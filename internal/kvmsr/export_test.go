package kvmsr

// Test-only accessors for the package-internal binding methods.

// InitialRangeForTest exposes MapBinding.initialRange.
func InitialRangeForTest(b MapBinding, laneIdx, laneCount int, numKeys uint64) (uint64, uint64) {
	return b.initialRange(laneIdx, laneCount, numKeys)
}

// PoolStartForTest exposes MapBinding.poolStart.
func PoolStartForTest(b MapBinding, laneCount int, numKeys uint64) uint64 {
	return b.poolStart(laneCount, numKeys)
}
