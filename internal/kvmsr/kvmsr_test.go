package kvmsr_test

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"updown"
	"updown/internal/kvmsr"
	"updown/internal/udweave"
)

// TestBlockBindingPartitionsExactly: Block ranges tile [0, numKeys) with no
// gaps or overlaps for any lane count.
func TestBlockBindingPartitionsExactly(t *testing.T) {
	f := func(lanes8 uint8, keys16 uint16) bool {
		lanes := int(lanes8%200) + 1
		keys := uint64(keys16)
		covered := make(map[uint64]int)
		prevEnd := uint64(0)
		for i := 0; i < lanes; i++ {
			s, e := kvmsr.InitialRangeForTest(kvmsr.Block{}, i, lanes, keys)
			if s > e || e > keys {
				return false
			}
			if s < prevEnd {
				return false // overlap
			}
			for k := s; k < e; k++ {
				covered[k]++
			}
			if e > prevEnd {
				prevEnd = e
			}
		}
		if uint64(len(covered)) != keys {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPBMWInitialPlusPoolCoversAll(t *testing.T) {
	f := func(lanes8 uint8, keys16 uint16, denom8 uint8) bool {
		lanes := int(lanes8%100) + 1
		keys := uint64(keys16)
		b := kvmsr.PBMW{InitialDenom: int(denom8%4) + 1, ChunkSize: 16}
		covered := uint64(0)
		var maxEnd uint64
		for i := 0; i < lanes; i++ {
			s, e := kvmsr.InitialRangeForTest(b, i, lanes, keys)
			if s > e || e > keys {
				return false
			}
			covered += e - s
			if e > maxEnd {
				maxEnd = e
			}
		}
		pool := kvmsr.PoolStartForTest(b, lanes, keys)
		// Statically assigned keys and pool must cover all keys with no
		// gap between them.
		return pool <= keys && maxEnd <= pool && covered == pool
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStrideBinding(t *testing.T) {
	// Step 4 over 16 lanes, 4 keys: key k on lane 4k only.
	for idx := 0; idx < 16; idx++ {
		s, e := kvmsr.InitialRangeForTest(kvmsr.Stride{Step: 4}, idx, 16, 4)
		if idx%4 == 0 && idx/4 < 4 {
			if s != uint64(idx/4) || e != s+1 {
				t.Fatalf("lane %d got [%d,%d)", idx, s, e)
			}
		} else if s != e {
			t.Fatalf("lane %d unexpectedly got keys [%d,%d)", idx, s, e)
		}
	}
}

// doAll over N keys must run every key exactly once and deliver the
// completion continuation.
func TestDoAllRunsEveryKeyOnce(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 2, Shards: 1, MaxTime: 1 << 34})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	seen := make([]int32, n)
	var inv *kvmsr.Invocation
	body := m.Prog.Define("body", func(c *updown.Ctx) {
		atomic.AddInt32(&seen[c.Op(0)], 1)
		c.Cycles(20)
		inv.Return(c, c.Cont())
		c.YieldTerminate()
	})
	var completed atomic.Bool
	done := m.Prog.Define("done", func(c *updown.Ctx) {
		completed.Store(true)
		c.YieldTerminate()
	})
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "doall", NumKeys: n, MapEvent: body,
		Lanes: kvmsr.AllLanes(m.Arch),
	})
	m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(m.Arch.LaneID(0, 0, 0), done), n)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed.Load() {
		t.Fatal("completion continuation never fired")
	}
	for k := range seen {
		if seen[k] != 1 {
			t.Fatalf("key %d ran %d times", k, seen[k])
		}
	}
}

// Full map-shuffle-reduce: every map emits per-key tuples, reduces
// accumulate into global memory via fetch-add, and the completion reports
// the emit count.
func TestMapReduceEndToEnd(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 2, Shards: 1, MaxTime: 1 << 34})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	const emitsPerKey = 3
	counterVA, err := m.GAS.DRAMmalloc(4096, 0, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var inv *kvmsr.Invocation
	mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
		key := c.Op(0)
		c.Cycles(10)
		for i := uint64(0); i < emitsPerKey; i++ {
			inv.Emit(c, key*emitsPerKey+i, key)
		}
		inv.Return(c, c.Cont())
		c.YieldTerminate()
	})
	var reduceAck udweave.Label
	reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
		// key = c.Op(0), carried value = c.Op(1); verify the value
		// relationship then count the tuple in global memory.
		if c.Op(0)/emitsPerKey != c.Op(1) {
			t.Errorf("tuple mismatch: key %d value %d", c.Op(0), c.Op(1))
		}
		c.Cycles(8)
		c.DRAMFetchAdd(counterVA, 1, c.ContinueTo(reduceAck))
	})
	reduceAck = m.Prog.Define("kv_reduce_ack", func(c *updown.Ctx) {
		inv.ReduceDone(c)
		c.YieldTerminate()
	})
	var delta, cumulative uint64
	done := m.Prog.Define("done", func(c *updown.Ctx) {
		delta, cumulative = c.Op(0), c.Op(1)
		c.YieldTerminate()
	})
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "mr", MapEvent: mapEv, ReduceEvent: reduceEv,
		Lanes: kvmsr.AllLanes(m.Arch),
	})
	m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(m.Arch.LaneID(0, 0, 0), done), n)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if delta != n*emitsPerKey || cumulative != n*emitsPerKey {
		t.Fatalf("completion reported delta=%d cumulative=%d, want %d", delta, cumulative, n*emitsPerKey)
	}
	if got := m.GAS.ReadU64(counterVA); got != n*emitsPerKey {
		t.Fatalf("reduce counter = %d, want %d", got, n*emitsPerKey)
	}
}

// Relaunching the same invocation must work and report per-launch deltas
// (BFS launches one invocation per round).
func TestRelaunchReportsDeltas(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 1, Shards: 1, MaxTime: 1 << 34})
	if err != nil {
		t.Fatal(err)
	}
	var inv *kvmsr.Invocation
	mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
		inv.Emit(c, c.Op(0))
		inv.Return(c, c.Cont())
		c.YieldTerminate()
	})
	reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
		inv.ReduceDone(c)
		c.YieldTerminate()
	})
	var deltas []uint64
	rounds := []uint64{100, 50, 200}
	var done udweave.Label
	done = m.Prog.Define("done", func(c *updown.Ctx) {
		deltas = append(deltas, c.Op(0))
		if len(deltas) < len(rounds) {
			// Chain the next round back into this same thread.
			inv.Launch(c, rounds[len(deltas)], c.ContinueTo(done))
			return
		}
		c.YieldTerminate()
	})
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "rounds", MapEvent: mapEv, ReduceEvent: reduceEv,
		Lanes: kvmsr.LaneSet{First: 0, Count: 256},
	})
	m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(m.Arch.LaneID(0, 0, 0), done), rounds[0])
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 || deltas[0] != 100 || deltas[1] != 50 || deltas[2] != 200 {
		t.Fatalf("deltas = %v, want %v", deltas, rounds)
	}
}

// The Hash binding must spread reduce tasks evenly over lanes.
func TestHashBindingBalance(t *testing.T) {
	ls := kvmsr.LaneSet{First: 0, Count: 64}
	counts := make([]int, 64)
	var h kvmsr.Hash
	const keys = 64 * 1000
	for k := uint64(0); k < keys; k++ {
		counts[ls.Index(h.Lane(k, ls))]++
	}
	for lane, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("lane %d received %d of %d keys (want ~1000)", lane, c, keys)
		}
	}
}

func TestBlockReduceBindingMonotone(t *testing.T) {
	ls := kvmsr.LaneSet{First: 10, Count: 8}
	b := kvmsr.BlockReduce{KeySpace: 800}
	prev := ls.First
	for k := uint64(0); k < 800; k++ {
		lane := b.Lane(k, ls)
		if lane < prev || !ls.Contains(lane) {
			t.Fatalf("key %d on lane %d (prev %d)", k, lane, prev)
		}
		prev = lane
	}
	if b.Lane(0, ls) != 10 || b.Lane(799, ls) != 17 {
		t.Fatal("BlockReduce endpoints wrong")
	}
}

// PBMW must complete all keys despite heavy skew, and beat Block on a
// workload whose expensive keys cluster in one lane's block.
func TestPBMWSkewToleranceAndCoverage(t *testing.T) {
	run := func(binding kvmsr.MapBinding) (updown.Cycles, []int32) {
		m, err := updown.New(updown.Config{Nodes: 1, Shards: 1, MaxTime: 1 << 36})
		if err != nil {
			t.Fatal(err)
		}
		const n = 4096
		seen := make([]int32, n)
		var inv *kvmsr.Invocation
		mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
			key := c.Op(0)
			atomic.AddInt32(&seen[key], 1)
			// Keys in the first 1/16 of the space are 400x more
			// expensive: under Block they all land on the first
			// lanes.
			if key < n/16 {
				c.Cycles(20000)
			} else {
				c.Cycles(50)
			}
			inv.Return(c, c.Cont())
			c.YieldTerminate()
		})
		inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
			Name: "skew", MapEvent: mapEv, MapBinding: binding,
			Lanes: kvmsr.LaneSet{First: 0, Count: 512},
		})
		m.Start(inv.LaunchEvw(), n)
		stats, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.FinalTime, seen
	}
	blockTime, blockSeen := run(kvmsr.Block{})
	pbmwTime, pbmwSeen := run(kvmsr.PBMW{ChunkSize: 8})
	for k := range blockSeen {
		if blockSeen[k] != 1 || pbmwSeen[k] != 1 {
			t.Fatalf("key %d: block %d pbmw %d executions", k, blockSeen[k], pbmwSeen[k])
		}
	}
	if pbmwTime >= blockTime {
		t.Fatalf("PBMW (%d cycles) did not beat Block (%d cycles) on skewed work", pbmwTime, blockTime)
	}
}

// A map task spanning several events (split-phase DRAM access between
// them) must still be tracked correctly.
func TestMultiEventMapTask(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 1, Shards: 1, MaxTime: 1 << 34})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	dataVA, _ := m.GAS.DRAMmalloc(n*8, 0, 1, 4096)
	for i := uint64(0); i < n; i++ {
		m.GAS.WriteU64(dataVA+i*8, i*7)
	}
	type mapState struct{ mapCont uint64 }
	var inv *kvmsr.Invocation
	var phase2 udweave.Label
	mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
		c.SetState(&mapState{mapCont: c.Cont()})
		c.DRAMRead(dataVA+c.Op(0)*8, 1, c.ContinueTo(phase2))
	})
	phase2 = m.Prog.Define("kv_map_phase2", func(c *updown.Ctx) {
		s := c.State().(*mapState)
		inv.Emit(c, c.Op(0)) // emit the loaded value as the key
		inv.Return(c, s.mapCont)
		c.YieldTerminate()
	})
	var sum atomic.Uint64
	reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
		sum.Add(c.Op(0))
		inv.ReduceDone(c)
		c.YieldTerminate()
	})
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "multi", MapEvent: mapEv, ReduceEvent: reduceEv,
		Lanes: kvmsr.LaneSet{First: 0, Count: 128},
	})
	m.Start(inv.LaunchEvw(), n)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(7 * n * (n - 1) / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// The parallel simulator must produce the identical completion time as the
// sequential reference for a full map-shuffle-reduce (only simulated state
// is shared, so any shard count is safe).
func TestParallelEngineDeterminism(t *testing.T) {
	run := func(shards int) (updown.Cycles, uint64) {
		m, err := updown.New(updown.Config{Nodes: 4, Shards: shards, MaxTime: 1 << 34})
		if err != nil {
			t.Fatal(err)
		}
		counterVA, _ := m.GAS.DRAMmalloc(4096, 0, 1, 4096)
		var inv *kvmsr.Invocation
		var ack udweave.Label
		mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
			c.Cycles(int(c.Op(0)%37) + 5)
			inv.Emit(c, c.Op(0)*2654435761, c.Op(0))
			inv.Return(c, c.Cont())
			c.YieldTerminate()
		})
		reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
			c.Cycles(12)
			c.DRAMFetchAdd(counterVA, c.Op(1), c.ContinueTo(ack))
		})
		ack = m.Prog.Define("ack", func(c *updown.Ctx) {
			inv.ReduceDone(c)
			c.YieldTerminate()
		})
		inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
			Name: "det", MapEvent: mapEv, ReduceEvent: reduceEv,
			Lanes: kvmsr.AllLanes(m.Arch),
		})
		const n = 3000
		m.Start(inv.LaunchEvw(), n)
		stats, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.FinalTime, m.GAS.ReadU64(counterVA)
	}
	seqTime, seqSum := run(1)
	parTime, parSum := run(4)
	if seqTime != parTime || seqSum != parSum {
		t.Fatalf("parallel (time %d, sum %d) != sequential (time %d, sum %d)",
			parTime, parSum, seqTime, seqSum)
	}
	if seqSum != 3000*2999/2 {
		t.Fatalf("sum = %d, want %d", seqSum, 3000*2999/2)
	}
}

func TestZeroKeysCompletes(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 1, Shards: 1, MaxTime: 1 << 32})
	if err != nil {
		t.Fatal(err)
	}
	var inv *kvmsr.Invocation
	mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
		t.Error("map ran with zero keys")
		inv.Return(c, c.Cont())
		c.YieldTerminate()
	})
	reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
		inv.ReduceDone(c)
		c.YieldTerminate()
	})
	var fired atomic.Bool
	done := m.Prog.Define("done", func(c *updown.Ctx) {
		fired.Store(true)
		c.YieldTerminate()
	})
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "zero", MapEvent: mapEv, ReduceEvent: reduceEv,
		Lanes: kvmsr.AllLanes(m.Arch),
	})
	m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(0, done), 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("completion never fired for zero keys")
	}
}

func TestSpecValidation(t *testing.T) {
	m, _ := updown.New(updown.Config{Nodes: 1, Shards: 1})
	if _, err := kvmsr.New(m.Prog, kvmsr.Spec{Name: "x", Lanes: kvmsr.AllLanes(m.Arch)}); err == nil {
		t.Error("missing MapEvent accepted")
	}
	ev := m.Prog.Define("e", func(c *updown.Ctx) {})
	if _, err := kvmsr.New(m.Prog, kvmsr.Spec{Name: "x", MapEvent: ev, Lanes: kvmsr.LaneSet{First: 0, Count: 0}}); err == nil {
		t.Error("empty LaneSet accepted")
	}
	if _, err := kvmsr.New(m.Prog, kvmsr.Spec{Name: "x", MapEvent: ev, Lanes: kvmsr.LaneSet{First: 0, Count: 1 << 30}}); err == nil {
		t.Error("oversized LaneSet accepted")
	}
}

// Small subsets of lanes (down to a single lane, where one lane plays all
// four tree roles) must work.
func TestSmallLaneSets(t *testing.T) {
	for _, lanes := range []int{1, 3, 64, 65, 100} {
		m, err := updown.New(updown.Config{Nodes: 1, Shards: 1, MaxTime: 1 << 34})
		if err != nil {
			t.Fatal(err)
		}
		const n = 200
		var ran atomic.Int64
		var inv *kvmsr.Invocation
		mapEv := m.Prog.Define("kv_map", func(c *updown.Ctx) {
			ran.Add(1)
			inv.Emit(c, c.Op(0))
			inv.Return(c, c.Cont())
			c.YieldTerminate()
		})
		reduceEv := m.Prog.Define("kv_reduce", func(c *updown.Ctx) {
			inv.ReduceDone(c)
			c.YieldTerminate()
		})
		inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
			Name: "small", MapEvent: mapEv, ReduceEvent: reduceEv,
			Lanes: kvmsr.LaneSet{First: 5, Count: lanes},
		})
		m.Start(inv.LaunchEvw(), n)
		if _, err := m.Run(); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if ran.Load() != n {
			t.Fatalf("lanes=%d: ran %d maps, want %d", lanes, ran.Load(), n)
		}
	}
}
