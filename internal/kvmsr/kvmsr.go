// Package kvmsr implements KVMSR — key-value map-shuffle-reduce — the
// paper's library for organizing massive-scale parallelism (Section 2.2).
//
// A KVMSR invocation applies a user kv_map event to every key of a key
// space, distributing the map tasks over a lane set according to a
// computation binding (Block by default, PBMW for skew tolerance). Map
// tasks emit intermediate key-value tuples; each emit spawns a kv_reduce
// task on the lane selected by the reduce binding (Hash by default). Both
// user events run over the shared global address space and may perform
// split-phase DRAM accesses across multiple events of their thread.
//
// The library is itself written against the udweave runtime, so every
// coordination step — hierarchical broadcast (master, node masters,
// accelerator masters, lanes), dynamic work distribution, and distributed
// termination detection — spends simulated cycles and network messages,
// exactly the overheads the paper's strong-scaling curves include.
//
// Contract for user events:
//
//   - kv_map receives its key as operand 0 and the map continuation as the
//     message continuation. It may emit any number of tuples via Emit, then
//     must call Return(c, mapCont) exactly once (after its last Emit, in
//     whichever event of the map thread finishes the task).
//   - kv_reduce receives the emitted tuple (key, values...) as operands.
//     When its work — possibly spanning several events — is complete, it
//     must call ReduceDone(c) exactly once.
//   - kv_reduce must not Emit (reductions that need to generate more work
//     launch a follow-up invocation instead, as BFS does per round).
package kvmsr

import (
	"fmt"

	"updown/internal/arch"
	"updown/internal/sim"
	"updown/internal/udweave"
)

// DefaultMaxOutstanding is the per-lane cap on concurrently active map
// tasks. KVMSR throttles task creation so thread and memory parallelism
// match the hardware rather than flooding it (Section 4.1.3).
const DefaultMaxOutstanding = 32

// probeRetryDelay is the backoff before re-probing reduce counters during
// termination detection.
const probeRetryDelay = 500

// Spec describes one KVMSR invocation.
type Spec struct {
	// Name prefixes the internal event labels (diagnostics).
	Name string
	// NumKeys is the default key-space size; Launch may override it per
	// round (BFS frontiers shrink and grow).
	NumKeys uint64
	// MapEvent is the user's kv_map event label.
	MapEvent udweave.Label
	// ReduceEvent is the user's kv_reduce label; zero means the
	// invocation is a doAll (map only, reduction used purely for
	// synchronization).
	ReduceEvent udweave.Label
	// MapBinding distributes keys over lanes (nil = Block).
	MapBinding MapBinding
	// ReduceBinding maps emitted keys to lanes (nil = Hash).
	ReduceBinding ReduceBinding
	// Lanes is the target lane set.
	Lanes LaneSet
	// MaxOutstanding caps in-flight map tasks per lane (0 = default).
	MaxOutstanding int
	// Resilience, when non-nil, routes emitted tuples through the
	// resilient shuffle (acks, retransmission with backoff, idempotent
	// apply — see resilience.go), so the invocation survives message
	// drop/duplication/delay injected by internal/fault. Ignored for
	// map-only invocations (ReduceEvent zero), whose shuffle carries no
	// tuples.
	Resilience *Resilience
	// Coalesce, when non-nil, routes emitted tuples through the
	// coalescing shuffle (per-destination pack buffers, multi-tuple
	// messages, max-linger flush guard — see coalesce.go). Composes with
	// Resilience: packed messages are acked and retransmitted as units.
	// Ignored for map-only invocations, whose shuffle carries no tuples.
	Coalesce *Coalesce
	// Combiner, when non-nil, pre-reduces same-key tuples inside the
	// pack buffers (see the Combiner type's associativity contract).
	// Requires Coalesce.
	Combiner Combiner
	// ReduceAnyLane declares that kv_reduce keeps no lane-keyed state —
	// it may correctly run on any lane of the set, not just the one the
	// reduce binding picked (PageRank accumulates through per-lane
	// combining caches that a flush-all later drains on every lane;
	// triangle counting indexes its totals array by the executing lane).
	// Under Coalesce this lets the distributor on the destination node
	// run unpacked tuples in place instead of forwarding each to its
	// owner lane, saving one intra-node message and one event dispatch
	// per remote tuple. Ignored without Coalesce: the direct path already
	// sends straight to the binding's lane.
	ReduceAnyLane bool
}

// laneState is the per-lane, per-invocation bookkeeping kept in lane-local
// scratchpad storage. One lane may simultaneously play up to four roles
// (worker, accelerator master, node master, invocation master), whose
// fields are kept disjoint.
//
// The emitted and reduced counters are cumulative across launches of the
// same invocation: termination detection compares cumulative sums, which
// is insensitive to reduce tasks racing ahead of a later round's
// lane-start broadcast.
type laneState struct {
	// worker role
	numKeys     uint64
	arg         uint64
	nextKey     uint64
	endKey      uint64
	outstanding int
	emitted     uint64
	reduced     uint64
	awaiting    bool
	exhausted   bool
	doneSent    bool
	// mapActive tracks the open map-window span (tracing only): the
	// window from the lane's first in-flight map task to its lane-done
	// report.
	mapActive bool
	// sendBuf is the lane's reusable shuffle staging buffer: Emit,
	// SendReduce and the coalescing flush assemble outgoing operand
	// lists here instead of allocating per call (the engine copies
	// operands into its message arena, so reuse is safe).
	sendBuf [sim.MaxOperands]uint64

	// accelerator-master role
	aExpect int
	aDone   int
	aEmit   uint64
	apCnt   int
	apSum   uint64

	// node-master role
	nExpect int
	nDone   int
	nEmit   uint64
	npCnt   int
	npSum   uint64

	// invocation-master role
	cont     uint64
	mDone    int
	mEmit    uint64
	prevEmit uint64
	mpCnt    int
	mpSum    uint64
	poolNext uint64
	poolEnd  uint64
	probing  bool
	// lastProbeSum/noProgress drive the straggler detector: consecutive
	// termination probes that report the same (short) reduce sum mean
	// outstanding shuffle work is stuck, so the master re-kicks lanes.
	lastProbeSum uint64
	noProgress   int
	// launches numbers the invocation's launches; it pairs the per-launch
	// phase spans (tracing only).
	launches uint64
}

// Invocation is a registered KVMSR computation, launchable repeatedly.
type Invocation struct {
	p *udweave.Program
	s Spec
	// slot indexes the lane-local state.
	slot int

	// Internal event labels.
	lMasterStart udweave.Label
	lNodeStart   udweave.Label
	lAccelStart  udweave.Label
	lLaneStart   udweave.Label
	lMapReturn   udweave.Label
	lLaneDone    udweave.Label
	lAccelDone   udweave.Label
	lNodeDone    udweave.Label
	lProbeNode   udweave.Label
	lProbeAccel  udweave.Label
	lProbeLane   udweave.Label
	lReplyAccel  udweave.Label
	lReplyNode   udweave.Label
	lReplyMaster udweave.Label
	lRetryProbe  udweave.Label
	lMoreWork    udweave.Label
	lGrant       udweave.Label

	// Resilient-shuffle registration (nil res means the classic reliable
	// shuffle; see resilience.go).
	res         *Resilience
	rslot       int
	lRedDeliver udweave.Label
	lAck        udweave.Label
	lGuard      udweave.Label
	lRekick     udweave.Label

	// Coalescing-shuffle registration (nil coal means one message per
	// tuple; see coalesce.go).
	coal         *Coalesce
	cslot        int
	lPackDeliver udweave.Label
	lFlushGuard  udweave.Label
	// lpn caches the machine's lanes-per-node: node-of-lane arithmetic on
	// the emit fast path (coalescing granularity, network-message
	// accounting).
	lpn int

	// Precomputed span names (tracing): per-emit instants, per-lane map
	// windows, and per-launch master phases.
	nameEmit       string
	nameMapWin     string
	namePhaseMap   string
	namePhaseDrain string
	nameRetry      string
	nameDupDrop    string
	nameFlush      string
}

var invSeq int

// New validates the spec and registers the invocation's internal events
// with the program. Call during program construction (single-threaded).
func New(p *udweave.Program, s Spec) (*Invocation, error) {
	if err := s.Lanes.Validate(p.M); err != nil {
		return nil, err
	}
	if s.MapEvent == 0 {
		return nil, fmt.Errorf("kvmsr: %s: MapEvent is required", s.Name)
	}
	if s.MapBinding == nil {
		s.MapBinding = Block{}
	}
	if s.ReduceBinding == nil {
		s.ReduceBinding = Hash{}
	}
	if s.MaxOutstanding <= 0 {
		s.MaxOutstanding = DefaultMaxOutstanding
	}
	if s.Combiner != nil && s.Coalesce == nil {
		return nil, fmt.Errorf("kvmsr: %s: Combiner requires Coalesce", s.Name)
	}
	invSeq++
	v := &Invocation{p: p, s: s, slot: p.AllocSlot(), lpn: p.M.LanesPerNode()}
	n := s.Name
	v.lMasterStart = p.Define(n+".master_start", v.masterStart)
	v.lNodeStart = p.Define(n+".node_start", v.nodeStart)
	v.lAccelStart = p.Define(n+".accel_start", v.accelStart)
	v.lLaneStart = p.Define(n+".lane_start", v.laneStart)
	v.lMapReturn = p.Define(n+".map_return", v.mapReturn)
	v.lLaneDone = p.Define(n+".lane_done", v.laneDone)
	v.lAccelDone = p.Define(n+".accel_done", v.accelDone)
	v.lNodeDone = p.Define(n+".node_done", v.nodeDone)
	v.lProbeNode = p.Define(n+".probe_node", v.probeNode)
	v.lProbeAccel = p.Define(n+".probe_accel", v.probeAccel)
	v.lProbeLane = p.Define(n+".probe_lane", v.probeLane)
	v.lReplyAccel = p.Define(n+".reply_accel", v.replyAccel)
	v.lReplyNode = p.Define(n+".reply_node", v.replyNode)
	v.lReplyMaster = p.Define(n+".reply_master", v.replyMaster)
	v.lRetryProbe = p.Define(n+".retry_probe", v.retryProbe)
	v.lMoreWork = p.Define(n+".more_work", v.moreWork)
	v.lGrant = p.Define(n+".grant", v.grant)
	v.nameEmit = n + ".emit"
	v.nameMapWin = n + ".map_window"
	v.namePhaseMap = n + ".map_phase"
	v.namePhaseDrain = n + ".drain_phase"
	v.nameRetry = n + ".retry"
	v.nameDupDrop = n + ".dup_drop"
	if s.Resilience != nil && s.ReduceEvent != 0 {
		res := s.Resilience.withDefaults(p.M)
		v.res = &res
		v.rslot = p.AllocSlot()
		v.lRedDeliver = p.Define(n+".red_deliver", v.redDeliver)
		v.lAck = p.Define(n+".emit_ack", v.ack)
		v.lGuard = p.Define(n+".guard", v.guard)
		v.lRekick = p.Define(n+".rekick", v.rekick)
	}
	if s.Coalesce != nil && s.ReduceEvent != 0 {
		co := s.Coalesce.withDefaults(p.M)
		v.coal = &co
		v.cslot = p.AllocSlot()
		v.lFlushGuard = p.Define(n+".flush_guard", v.flushGuard)
		if v.res == nil {
			// Under resilience the packed message arrives through
			// redDeliver (ack + dedup) instead.
			v.lPackDeliver = p.Define(n+".pack_deliver", v.packDeliver)
		}
		v.nameFlush = n + ".flush"
	}
	return v, nil
}

// Resilient reports whether the invocation uses the resilient shuffle.
func (v *Invocation) Resilient() bool { return v.res != nil }

// MustNew is New, panicking on error (program construction helper).
func MustNew(p *udweave.Program, s Spec) *Invocation {
	v, err := New(p, s)
	if err != nil {
		panic(err)
	}
	return v
}

// Spec returns the (defaulted) specification.
func (v *Invocation) Spec() Spec { return v.s }

// LaunchEvw returns the event word that starts the invocation: send it
// numKeys as operand 0 (or no operands for Spec.NumKeys) with the
// completion continuation. The completion event receives
// (emittedThisLaunch, emittedCumulative) as operands.
func (v *Invocation) LaunchEvw() uint64 {
	return udweave.EvwNew(v.s.Lanes.First, v.lMasterStart)
}

// Launch starts the invocation from inside the simulation.
func (v *Invocation) Launch(c *udweave.Ctx, numKeys uint64, cont uint64) {
	c.SendEvent(v.LaunchEvw(), cont, numKeys)
}

// LaunchWithArg additionally broadcasts one argument word that every
// kv_map task receives as operand 1 (BFS passes the round number this
// way — the "appropriate start points" the parallel iterator hands to
// each lane).
func (v *Invocation) LaunchWithArg(c *udweave.Ctx, numKeys, arg uint64, cont uint64) {
	c.SendEvent(v.LaunchEvw(), cont, numKeys, arg)
}

// st returns the lane-local state for this invocation.
func (v *Invocation) st(c *udweave.Ctx) *laneState {
	return c.LocalSlot(v.slot, func() any { return &laneState{} }).(*laneState)
}

// ---- user-facing operations ------------------------------------------

// Emit produces an intermediate tuple from a kv_map task: it schedules a
// kv_reduce task for key on the lane chosen by the reduce binding. The
// send is asynchronous with no response, so each emit generates additional
// parallelism. Under Spec.Coalesce a tuple bound for another node is
// buffered for packing instead of sent immediately (and a Spec.Combiner
// may absorb it into a buffered same-key tuple, in which case it never
// reaches a reducer and is not counted toward termination); same-node
// tuples always go out directly.
func (v *Invocation) Emit(c *udweave.Ctx, key uint64, vals ...uint64) {
	if v.s.ReduceEvent == 0 {
		panic(fmt.Sprintf("kvmsr: %s: Emit without a ReduceEvent", v.s.Name))
	}
	st := v.st(c)
	if st.doneSent {
		panic(fmt.Sprintf("kvmsr: %s: Emit on lane %d after its map phase completed (emits from kv_reduce are not supported)", v.s.Name, c.NetworkID()))
	}
	st.emitted += v.routeTuple(c, key, vals)
}

// nodeOf returns the node hosting a lane.
func (v *Invocation) nodeOf(id arch.NetworkID) int { return int(id) / v.lpn }

// countMsg counts one shuffle message toward Stats.ShuffleMsgs when it
// enters the inter-node network. Same-node messages ride the intra-node
// interconnect — they never touch the injection port coalescing exists to
// relieve — so ShuffleMsgs/ShuffleTuples stays an apples-to-apples network
// metric in both shuffle modes.
func (v *Invocation) countMsg(c *udweave.Ctx, target arch.NetworkID) {
	if v.nodeOf(target) != v.nodeOf(c.NetworkID()) {
		c.CountShuffle(1, 0)
	}
}

// routeTuple delivers one [key, vals...] tuple through the shuffle —
// buffered per destination node under Coalesce when the owner is remote,
// directly otherwise — and returns the termination credit: 1, or 0 when a
// coalescing Combiner absorbed the tuple into a buffered same-key entry.
func (v *Invocation) routeTuple(c *udweave.Ctx, key uint64, vals []uint64) uint64 {
	c.Cycles(4)
	c.Mark(v.nameEmit)
	c.CountShuffle(0, 1)
	target := v.s.ReduceBinding.Lane(key, v.s.Lanes)
	if v.coal != nil {
		checkCoalescedVals(v, vals)
		if node := v.nodeOf(target); node != v.nodeOf(c.NetworkID()) {
			return v.bufferTuple(c, node, key, vals)
		}
	}
	st := v.st(c)
	buf := &st.sendBuf
	if v.res != nil {
		checkResilientVals(v.s.Name, vals)
		if v.coal != nil {
			// Same-node tuple under coalescing+resilience: wrap as a
			// 1-tuple packed message so redDeliver parses one format.
			buf[0] = packHeader(1, 1+len(vals))
			buf[1] = key
			n := copy(buf[2:], vals)
			v.sendResilient(c, target, buf[:2+n])
			return 1
		}
		buf[0] = key
		n := copy(buf[1:], vals)
		v.sendResilient(c, target, buf[:1+n])
		return 1
	}
	buf[0] = key
	n := copy(buf[1:], vals)
	v.countMsg(c, target)
	c.SendEvent(udweave.EvwNew(target, v.s.ReduceEvent), udweave.IGNRCONT, buf[:1+n]...)
	return 1
}

// SendReduce schedules a kv_reduce task for key WITHOUT crediting the emit
// to this lane. It exists for map tasks that organize their own local
// workers (the BFS accelerator master-worker scheme): sub-workers send
// reduces with SendReduce and report their counts to the map task, which
// credits them with EmitFrom before calling Return. The returned credit is
// the number of reduce tasks the call actually scheduled — 1, or 0 when a
// coalescing Combiner absorbed the tuple into a buffered same-key entry —
// and is what the map task must pass to EmitFrom. Using SendReduce without
// a matching EmitFrom breaks termination detection.
func (v *Invocation) SendReduce(c *udweave.Ctx, key uint64, vals ...uint64) uint64 {
	if v.s.ReduceEvent == 0 {
		panic(fmt.Sprintf("kvmsr: %s: SendReduce without a ReduceEvent", v.s.Name))
	}
	return v.routeTuple(c, key, vals)
}

// EmitFrom credits count reduce sends (performed via SendReduce by local
// sub-workers) to this lane's map phase. It must run on a lane whose map
// tasks have not all returned — normally the map task's own lane, before
// its Return.
func (v *Invocation) EmitFrom(c *udweave.Ctx, count uint64) {
	st := v.st(c)
	if st.doneSent {
		panic(fmt.Sprintf("kvmsr: %s: EmitFrom on lane %d after its map phase completed", v.s.Name, c.NetworkID()))
	}
	st.emitted += count
	c.ScratchAccess(1)
}

// Return signals that one kv_map task has completed. mapCont is the map
// continuation the task received (c.Cont() in the kv_map event; a task
// spanning several events must save it in thread state).
func (v *Invocation) Return(c *udweave.Ctx, mapCont uint64) {
	c.Cycles(2)
	c.SendEvent(mapCont, udweave.IGNRCONT)
}

// ReduceDone signals that one kv_reduce task has completed.
func (v *Invocation) ReduceDone(c *udweave.Ctx) {
	st := v.st(c)
	st.reduced++
	c.ScratchAccess(1)
}

// ---- broadcast: master -> node masters -> accel masters -> lanes ------

func (v *Invocation) masterStart(c *udweave.Ctx) {
	st := v.st(c)
	numKeys := v.s.NumKeys
	arg := uint64(0)
	if c.NOps() > 0 {
		numKeys = c.Op(0)
	}
	if c.NOps() > 1 {
		arg = c.Op(1)
	}
	st.cont = c.Cont()
	st.mDone = 0
	st.mEmit = 0
	st.poolNext = v.s.MapBinding.poolStart(v.s.Lanes.Count, numKeys)
	st.poolEnd = numKeys
	st.probing = false
	st.lastProbeSum = 0
	st.noProgress = 0
	st.launches++
	c.TaskBegin(v.namePhaseMap, st.launches)
	c.Cycles(10)
	m := v.p.M
	for node := v.s.Lanes.firstNode(m); node <= v.s.Lanes.lastNode(m); node++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.NodeMaster(m, node), v.lNodeStart), udweave.IGNRCONT, numKeys, arg)
	}
	c.YieldTerminate()
}

func (v *Invocation) nodeStart(c *udweave.Ctx) {
	st := v.st(c)
	m := v.p.M
	node := m.NodeOf(c.NetworkID())
	lo, hi := v.s.Lanes.AccelRangeOnNode(m, node)
	st.nExpect = hi - lo
	st.nDone = 0
	st.nEmit = 0
	c.Cycles(6)
	for a := lo; a < hi; a++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.AccelMaster(m, node, a), v.lAccelStart), udweave.IGNRCONT, c.Op(0), c.Op(1))
	}
	c.YieldTerminate()
}

func (v *Invocation) accelStart(c *udweave.Ctx) {
	st := v.st(c)
	m := v.p.M
	self := c.NetworkID()
	lo, hi := v.s.Lanes.LaneRangeOnAccel(m, m.NodeOf(self), m.AccelOf(self))
	st.aExpect = int(hi - lo)
	st.aDone = 0
	st.aEmit = 0
	c.Cycles(6)
	for lane := lo; lane < hi; lane++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(lane, v.lLaneStart), udweave.IGNRCONT, c.Op(0), c.Op(1))
	}
	c.YieldTerminate()
}

func (v *Invocation) laneStart(c *udweave.Ctx) {
	st := v.st(c)
	numKeys := c.Op(0)
	idx := v.s.Lanes.Index(c.NetworkID())
	st.numKeys = numKeys
	st.arg = c.Op(1)
	st.nextKey, st.endKey = v.s.MapBinding.initialRange(idx, v.s.Lanes.Count, numKeys)
	st.outstanding = 0
	st.awaiting = false
	st.exhausted = !v.s.MapBinding.dynamic()
	st.doneSent = false
	c.Cycles(8)
	v.pump(c, st)
	c.YieldTerminate()
}

// pump launches map tasks up to the outstanding window, requests more work
// under a dynamic binding, and reports lane completion.
func (v *Invocation) pump(c *udweave.Ctx, st *laneState) {
	self := c.NetworkID()
	for st.outstanding < v.s.MaxOutstanding && st.nextKey < st.endKey {
		key := st.nextKey
		st.nextKey++
		st.outstanding++
		c.Cycles(3)
		c.SendEvent(udweave.EvwNew(self, v.s.MapEvent),
			udweave.EvwNew(self, v.lMapReturn), key, st.arg)
	}
	// Under a dynamic binding, ask the master for another chunk only when
	// the lane has drained its work: granting chunks to still-busy lanes
	// would queue movable work behind long tasks, defeating the
	// load-balancing purpose of PBMW.
	if st.nextKey >= st.endKey && !st.exhausted && !st.awaiting && st.outstanding == 0 {
		st.awaiting = true
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.First, v.lMoreWork),
			udweave.EvwNew(self, v.lGrant))
	}
	if st.outstanding == 0 && st.nextKey >= st.endKey && st.exhausted && !st.doneSent {
		st.doneSent = true
		// The lane's map phase is over (its last task returned): flush
		// everything still packed so the emit count reported upward is
		// backed by in-flight tuples. Tuples buffered on this lane later
		// by other lanes' sub-workers (SendReduce) are the flush guard's
		// responsibility.
		if v.coal != nil {
			v.flushAll(c)
		}
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.ParentAccelMaster(v.p.M, self), v.lLaneDone),
			udweave.IGNRCONT, st.emitted)
	}
	// Tracing: bracket the lane's map window — first in-flight task to the
	// lane-done report — as an async span (it overlaps the lane's event
	// executions). Only the transitions touch state, and only when spans
	// are recorded.
	if c.Tracing() {
		if st.outstanding > 0 && !st.mapActive {
			st.mapActive = true
			c.TaskBegin(v.nameMapWin, uint64(self))
		} else if st.doneSent && st.mapActive {
			st.mapActive = false
			c.TaskEnd(v.nameMapWin, uint64(self))
		}
	}
}

func (v *Invocation) mapReturn(c *udweave.Ctx) {
	st := v.st(c)
	st.outstanding--
	c.Cycles(2)
	v.pump(c, st)
	c.YieldTerminate()
}

// ---- dynamic work distribution (PBMW) ---------------------------------

func (v *Invocation) moreWork(c *udweave.Ctx) {
	st := v.st(c)
	chunk := v.s.MapBinding.chunk()
	start := st.poolNext
	end := start + chunk
	if end > st.poolEnd {
		end = st.poolEnd
	}
	st.poolNext = end
	c.Cycles(6)
	c.Reply(c.Cont(), start, end)
	c.YieldTerminate()
}

func (v *Invocation) grant(c *udweave.Ctx) {
	st := v.st(c)
	start, end := c.Op(0), c.Op(1)
	st.awaiting = false
	if start >= end {
		st.exhausted = true
	} else {
		st.nextKey, st.endKey = start, end
	}
	c.Cycles(4)
	v.pump(c, st)
	c.YieldTerminate()
}

// ---- completion aggregation: lanes -> accel -> node -> master ---------

func (v *Invocation) laneDone(c *udweave.Ctx) {
	st := v.st(c)
	st.aDone++
	st.aEmit += c.Op(0)
	c.Cycles(3)
	if st.aDone == st.aExpect {
		c.SendEvent(udweave.EvwNew(v.s.Lanes.ParentNodeMaster(v.p.M, c.NetworkID()), v.lAccelDone),
			udweave.IGNRCONT, st.aEmit)
	}
	c.YieldTerminate()
}

func (v *Invocation) accelDone(c *udweave.Ctx) {
	st := v.st(c)
	st.nDone++
	st.nEmit += c.Op(0)
	c.Cycles(3)
	if st.nDone == st.nExpect {
		c.SendEvent(udweave.EvwNew(v.s.Lanes.First, v.lNodeDone), udweave.IGNRCONT, st.nEmit)
	}
	c.YieldTerminate()
}

func (v *Invocation) nodeDone(c *udweave.Ctx) {
	st := v.st(c)
	st.mDone++
	st.mEmit += c.Op(0)
	c.Cycles(3)
	if st.mDone == v.s.Lanes.NumNodes(v.p.M) {
		// All map tasks have returned; mEmit is the cumulative emit
		// count. With no reduce phase the invocation is complete;
		// otherwise probe the reduce counters until they match.
		c.TaskEnd(v.namePhaseMap, st.launches)
		if v.s.ReduceEvent == 0 {
			v.complete(c, st)
		} else {
			st.probing = true
			c.TaskBegin(v.namePhaseDrain, st.launches)
			v.sendProbe(c)
		}
	}
	c.YieldTerminate()
}

func (v *Invocation) complete(c *udweave.Ctx, st *laneState) {
	if st.probing {
		c.TaskEnd(v.namePhaseDrain, st.launches)
	}
	delta := st.mEmit - st.prevEmit
	st.prevEmit = st.mEmit
	st.probing = false
	c.Cycles(4)
	c.Reply(st.cont, delta, st.mEmit)
}

// ---- termination detection: probe cumulative reduce counters ----------

func (v *Invocation) sendProbe(c *udweave.Ctx) {
	st := v.st(c)
	st.mpCnt = 0
	st.mpSum = 0
	m := v.p.M
	c.Cycles(4)
	for node := v.s.Lanes.firstNode(m); node <= v.s.Lanes.lastNode(m); node++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.NodeMaster(m, node), v.lProbeNode), udweave.IGNRCONT)
	}
}

func (v *Invocation) probeNode(c *udweave.Ctx) {
	st := v.st(c)
	st.npCnt = 0
	st.npSum = 0
	m := v.p.M
	node := m.NodeOf(c.NetworkID())
	lo, hi := v.s.Lanes.AccelRangeOnNode(m, node)
	c.Cycles(4)
	for a := lo; a < hi; a++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(v.s.Lanes.AccelMaster(m, node, a), v.lProbeAccel), udweave.IGNRCONT)
	}
	c.YieldTerminate()
}

func (v *Invocation) probeAccel(c *udweave.Ctx) {
	st := v.st(c)
	st.apCnt = 0
	st.apSum = 0
	m := v.p.M
	self := c.NetworkID()
	lo, hi := v.s.Lanes.LaneRangeOnAccel(m, m.NodeOf(self), m.AccelOf(self))
	c.Cycles(4)
	for lane := lo; lane < hi; lane++ {
		c.Cycles(2)
		c.SendEvent(udweave.EvwNew(lane, v.lProbeLane), udweave.IGNRCONT)
	}
	c.YieldTerminate()
}

func (v *Invocation) probeLane(c *udweave.Ctx) {
	st := v.st(c)
	c.Cycles(2)
	c.SendEvent(udweave.EvwNew(v.s.Lanes.ParentAccelMaster(v.p.M, c.NetworkID()), v.lReplyAccel),
		udweave.IGNRCONT, st.reduced)
	c.YieldTerminate()
}

func (v *Invocation) replyAccel(c *udweave.Ctx) {
	st := v.st(c)
	st.apCnt++
	st.apSum += c.Op(0)
	c.Cycles(3)
	if st.apCnt == st.aExpect {
		c.SendEvent(udweave.EvwNew(v.s.Lanes.ParentNodeMaster(v.p.M, c.NetworkID()), v.lReplyNode),
			udweave.IGNRCONT, st.apSum)
	}
	c.YieldTerminate()
}

func (v *Invocation) replyNode(c *udweave.Ctx) {
	st := v.st(c)
	st.npCnt++
	st.npSum += c.Op(0)
	c.Cycles(3)
	if st.npCnt == st.nExpect {
		c.SendEvent(udweave.EvwNew(v.s.Lanes.First, v.lReplyMaster), udweave.IGNRCONT, st.npSum)
	}
	c.YieldTerminate()
}

func (v *Invocation) replyMaster(c *udweave.Ctx) {
	st := v.st(c)
	st.mpCnt++
	st.mpSum += c.Op(0)
	c.Cycles(3)
	if st.mpCnt == v.s.Lanes.NumNodes(v.p.M) {
		if st.mpSum == st.mEmit {
			st.noProgress = 0
			v.complete(c, st)
		} else {
			// Reduces still in flight: back off and re-probe. Under the
			// resilient shuffle the master doubles as the straggler
			// detector: a run of probes with no forward progress means
			// shuffle work is stuck (lost retransmissions, a stalled
			// lane), so re-kick every lane to resend its outstanding
			// emits immediately.
			if v.res != nil {
				if st.mpSum == st.lastProbeSum {
					st.noProgress++
				} else {
					st.noProgress = 0
					st.lastProbeSum = st.mpSum
				}
				if st.noProgress >= v.res.StragglerProbes {
					st.noProgress = 0
					v.rst(c).totals.Rekicks++
					c.Cycles(4)
					for lane := v.s.Lanes.First; lane < v.s.Lanes.End(); lane++ {
						c.Cycles(1)
						c.SendEvent(udweave.EvwNew(lane, v.lRekick), udweave.IGNRCONT)
					}
				}
			}
			c.SendEventAfter(probeRetryDelay,
				udweave.EvwNew(v.s.Lanes.First, v.lRetryProbe), udweave.IGNRCONT)
		}
	}
	c.YieldTerminate()
}

func (v *Invocation) retryProbe(c *udweave.Ctx) {
	st := v.st(c)
	if st.probing {
		v.sendProbe(c)
	}
	c.YieldTerminate()
}
