package kvmsr

import (
	"fmt"

	"updown/internal/arch"
	"updown/internal/prng"
)

// LaneSet is the contiguous range of lanes a KVMSR invocation targets.
type LaneSet struct {
	// First is the first lane; it hosts the invocation master.
	First arch.NetworkID
	// Count is the number of lanes.
	Count int
}

// AllLanes targets the whole machine.
func AllLanes(m arch.Machine) LaneSet {
	return LaneSet{First: 0, Count: m.TotalLanes()}
}

// End returns one past the last lane.
func (ls LaneSet) End() arch.NetworkID { return ls.First + arch.NetworkID(ls.Count) }

// Contains reports membership.
func (ls LaneSet) Contains(id arch.NetworkID) bool { return id >= ls.First && id < ls.End() }

// Index returns the zero-based position of a lane within the set.
func (ls LaneSet) Index(id arch.NetworkID) int { return int(id - ls.First) }

// Validate checks the set against a machine.
func (ls LaneSet) Validate(m arch.Machine) error {
	if ls.Count <= 0 {
		return fmt.Errorf("kvmsr: LaneSet.Count must be positive, got %d", ls.Count)
	}
	if ls.First < 0 || int(ls.End()) > m.TotalLanes() {
		return fmt.Errorf("kvmsr: LaneSet [%d,%d) outside machine of %d lanes", ls.First, ls.End(), m.TotalLanes())
	}
	return nil
}

// Tree geometry: KVMSR organizes the lane set hierarchically
// (master -> node masters -> accelerator masters -> lanes) so that
// broadcast and reduction avoid serializing hundreds of thousands of sends
// at one lane. All of these are pure functions of (machine, set), so every
// participant derives its role and its parents/children locally without
// any metadata traffic.

// firstNode and lastNode bound the nodes the set touches.
func (ls LaneSet) firstNode(m arch.Machine) int { return m.NodeOf(ls.First) }
func (ls LaneSet) lastNode(m arch.Machine) int  { return m.NodeOf(ls.End() - 1) }

// NumNodes returns how many nodes the set touches.
func (ls LaneSet) NumNodes(m arch.Machine) int { return ls.lastNode(m) - ls.firstNode(m) + 1 }

// NodeMaster returns the lane coordinating a node's share of the set.
func (ls LaneSet) NodeMaster(m arch.Machine, node int) arch.NetworkID {
	id := m.LaneID(node, 0, 0)
	if id < ls.First {
		id = ls.First
	}
	return id
}

// laneRangeOnNode returns the intersection of the set with a node.
func (ls LaneSet) laneRangeOnNode(m arch.Machine, node int) (lo, hi arch.NetworkID) {
	lo = arch.NetworkID(node * m.LanesPerNode())
	hi = lo + arch.NetworkID(m.LanesPerNode())
	if lo < ls.First {
		lo = ls.First
	}
	if hi > ls.End() {
		hi = ls.End()
	}
	return lo, hi
}

// AccelRangeOnNode returns the accelerator indices the set covers on a node.
func (ls LaneSet) AccelRangeOnNode(m arch.Machine, node int) (lo, hi int) {
	l, h := ls.laneRangeOnNode(m, node)
	return m.AccelOf(l), m.AccelOf(h-1) + 1
}

// AccelMaster returns the lane coordinating one accelerator's share.
func (ls LaneSet) AccelMaster(m arch.Machine, node, accel int) arch.NetworkID {
	id := m.LaneID(node, accel, 0)
	if id < ls.First {
		id = ls.First
	}
	return id
}

// LaneRangeOnAccel returns the set's lanes on one accelerator.
func (ls LaneSet) LaneRangeOnAccel(m arch.Machine, node, accel int) (lo, hi arch.NetworkID) {
	lo = m.LaneID(node, accel, 0)
	hi = lo + arch.NetworkID(m.LanesPerAccel)
	if lo < ls.First {
		lo = ls.First
	}
	if hi > ls.End() {
		hi = ls.End()
	}
	return lo, hi
}

// ParentAccelMaster returns the accel master responsible for a lane.
func (ls LaneSet) ParentAccelMaster(m arch.Machine, id arch.NetworkID) arch.NetworkID {
	return ls.AccelMaster(m, m.NodeOf(id), m.AccelOf(id))
}

// ParentNodeMaster returns the node master responsible for a lane.
func (ls LaneSet) ParentNodeMaster(m arch.Machine, id arch.NetworkID) arch.NetworkID {
	return ls.NodeMaster(m, m.NodeOf(id))
}

// MapBinding distributes map keys over the lane set (paper Section 2.3).
type MapBinding interface {
	// initialRange returns lane laneIdx's statically assigned keys for a
	// key space of numKeys over laneCount lanes.
	initialRange(laneIdx int, laneCount int, numKeys uint64) (start, end uint64)
	// dynamic reports whether exhausted lanes should ask the master for
	// more work (the PBMW protocol).
	dynamic() bool
	// poolStart returns the first key held back for dynamic distribution
	// (= numKeys when nothing is pooled).
	poolStart(laneCount int, numKeys uint64) uint64
	// chunk is the grant size for dynamic requests.
	chunk() uint64
}

// Block assigns every lane an equal, contiguous portion of the keys — the
// default kv_map binding.
type Block struct{}

func (Block) initialRange(laneIdx, laneCount int, numKeys uint64) (uint64, uint64) {
	per := (numKeys + uint64(laneCount) - 1) / uint64(laneCount)
	start := uint64(laneIdx) * per
	end := start + per
	if start > numKeys {
		start = numKeys
	}
	if end > numKeys {
		end = numKeys
	}
	return start, end
}
func (Block) dynamic() bool                                  { return false }
func (Block) poolStart(laneCount int, numKeys uint64) uint64 { return numKeys }
func (Block) chunk() uint64                                  { return 0 }

// PBMW is partial-block plus master-worker: each lane receives InitialFrac
// of its equal share up front; the remainder is pooled at the master and
// handed out in ChunkSize grants as lanes finish, which tolerates skewed
// per-key work (the triangle-counting variant in Section 4.3.3).
type PBMW struct {
	// InitialDenom: lanes statically receive share/InitialDenom keys
	// (default 2, i.e. half).
	InitialDenom int
	// ChunkSize is the dynamic grant size (default 64 keys).
	ChunkSize uint64
}

func (b PBMW) denom() int {
	if b.InitialDenom <= 0 {
		return 2
	}
	return b.InitialDenom
}

func (b PBMW) chunk() uint64 {
	if b.ChunkSize == 0 {
		return 64
	}
	return b.ChunkSize
}

func (b PBMW) perLane(laneCount int, numKeys uint64) uint64 {
	per := (numKeys + uint64(laneCount) - 1) / uint64(laneCount)
	per /= uint64(b.denom())
	if per == 0 && numKeys > 0 {
		per = 1
	}
	return per
}

func (b PBMW) initialRange(laneIdx, laneCount int, numKeys uint64) (uint64, uint64) {
	per := b.perLane(laneCount, numKeys)
	start := uint64(laneIdx) * per
	end := start + per
	if start > numKeys {
		start = numKeys
	}
	if end > numKeys {
		end = numKeys
	}
	return start, end
}

func (b PBMW) dynamic() bool { return true }

func (b PBMW) poolStart(laneCount int, numKeys uint64) uint64 {
	p := b.perLane(laneCount, numKeys) * uint64(laneCount)
	if p > numKeys {
		p = numKeys
	}
	return p
}

// Stride assigns key k to the lane at set index k*Step: with Step equal to
// the lanes per accelerator, exactly one map task lands on each
// accelerator's master lane. BFS uses this to map over per-accelerator
// frontier sections (Section 4.2.2), with each task then organizing its
// accelerator's 64 lanes as local workers.
type Stride struct {
	// Step is the lane-index distance between consecutive keys (>= 1).
	Step int
}

func (b Stride) step() int {
	if b.Step < 1 {
		return 1
	}
	return b.Step
}

func (b Stride) initialRange(laneIdx, laneCount int, numKeys uint64) (uint64, uint64) {
	s := b.step()
	if laneIdx%s != 0 {
		return 0, 0
	}
	k := uint64(laneIdx / s)
	if k >= numKeys {
		return 0, 0
	}
	return k, k + 1
}
func (Stride) dynamic() bool                                  { return false }
func (Stride) poolStart(laneCount int, numKeys uint64) uint64 { return numKeys }
func (Stride) chunk() uint64                                  { return 0 }

// ReduceBinding maps an emitted key to the lane that runs its kv_reduce
// task.
type ReduceBinding interface {
	Lane(key uint64, ls LaneSet) arch.NetworkID
}

// Hash scatters keys uniformly over the lane set — the default kv_reduce
// binding, which gives good load balance on skewed key distributions.
type Hash struct{}

// Lane implements ReduceBinding: LaneID = (hash(key) % NRLanes) + 1stLane.
func (Hash) Lane(key uint64, ls LaneSet) arch.NetworkID {
	return ls.First + arch.NetworkID(prng.Mix64(key)%uint64(ls.Count))
}

// BlockReduce routes contiguous key ranges to contiguous lanes; KeySpace is
// the size of the emitted key domain. BFS uses a variant of this to keep
// next-frontier writes accelerator-local.
type BlockReduce struct {
	KeySpace uint64
}

// Lane implements ReduceBinding.
func (b BlockReduce) Lane(key uint64, ls LaneSet) arch.NetworkID {
	if b.KeySpace == 0 {
		return ls.First
	}
	i := key * uint64(ls.Count) / b.KeySpace
	if i >= uint64(ls.Count) {
		i = uint64(ls.Count) - 1
	}
	return ls.First + arch.NetworkID(i)
}

// ReduceFunc adapts a function to ReduceBinding, for application-defined
// bindings (e.g. triangle counting hashes a combination of vertex names).
type ReduceFunc func(key uint64, ls LaneSet) arch.NetworkID

// Lane implements ReduceBinding.
func (f ReduceFunc) Lane(key uint64, ls LaneSet) arch.NetworkID { return f(key, ls) }
