package kvmsr_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"updown"
	"updown/internal/fault"
	"updown/internal/kvmsr"
)

// chaosRun executes one wordcount-style map/shuffle/reduce job and
// returns the per-reduce-key value sums, the per-reduce-key application
// counts, the final simulated time, and the run's fault + resilience
// counters. The job is fully deterministic, so any two calls with the
// same (plan, shards, resilient) must agree wherever the protocol
// guarantees it.
func chaosRun(t *testing.T, plan *fault.Plan, shards int, resilient bool) (
	sums, applies []uint64, final updown.Cycles, fc fault.Counts, rt kvmsr.ResilienceTotals) {
	t.Helper()
	cfg := updown.Config{Nodes: 2, Shards: shards, MaxTime: 1 << 36, Fault: plan}
	if resilient {
		cfg.Resilience = &kvmsr.Resilience{}
	}
	m, err := updown.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		nKeys       = 1200
		emitsPerKey = 3
		reduceKeys  = 97
	)
	sums = make([]uint64, reduceKeys)
	applies = make([]uint64, reduceKeys)
	var inv *kvmsr.Invocation
	mapEv := m.Prog.Define("chaos_map", func(c *updown.Ctx) {
		key := c.Op(0)
		c.Cycles(10)
		for i := uint64(0); i < emitsPerKey; i++ {
			inv.Emit(c, (key*emitsPerKey+i)%reduceKeys, key*31+i)
		}
		inv.Return(c, c.Cont())
		c.YieldTerminate()
	})
	reduceEv := m.Prog.Define("chaos_reduce", func(c *updown.Ctx) {
		c.Cycles(8)
		atomic.AddUint64(&sums[c.Op(0)], c.Op(1))
		atomic.AddUint64(&applies[c.Op(0)], 1)
		inv.ReduceDone(c)
		c.YieldTerminate()
	})
	done := m.Prog.Define("chaos_done", func(c *updown.Ctx) { c.YieldTerminate() })
	inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
		Name: "chaos", MapEvent: mapEv, ReduceEvent: reduceEv,
		Lanes:      kvmsr.AllLanes(m.Arch),
		Resilience: m.Resilience,
	})
	m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(m.Arch.LaneID(0, 0, 0), done), nKeys)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out := inv.Outstanding(m.LanePeek()); out != 0 {
		t.Fatalf("%d emits still unacked after quiescence", out)
	}
	return sums, applies, stats.FinalTime, stats.Faults, inv.ResilienceTotals(m.LanePeek())
}

func mustPlan(t *testing.T, spec string, seed uint64) *fault.Plan {
	t.Helper()
	plan, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = seed
	return plan
}

func eqU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The headline guarantee: with drops, duplicates and delays on the
// shuffle class, a resilient invocation produces exactly the fault-free
// application results — every logical emit applied exactly once.
func TestResilientShuffleExactUnderFaults(t *testing.T) {
	plan := mustPlan(t, "drop=0.05,dup=0.02,delay=0.05:800", 42)
	goldenSums, goldenApplies, _, _, _ := chaosRun(t, nil, 1, true)
	sums, applies, _, fc, rt := chaosRun(t, plan, 1, true)
	if !eqU64(sums, goldenSums) {
		t.Fatal("reduce sums diverged from fault-free run")
	}
	if !eqU64(applies, goldenApplies) {
		t.Fatal("reduce application counts diverged from fault-free run")
	}
	if fc.Dropped == 0 || fc.Dupped == 0 || fc.Delayed == 0 {
		t.Fatalf("fault plan had no effect: %+v", fc)
	}
	if rt.Retries == 0 {
		t.Fatal("drops occurred but no retransmissions were recorded")
	}
	if rt.DupDrops == 0 {
		t.Fatal("duplicates occurred but the dedup window dropped nothing")
	}
	if rt.Acks != rt.Emits {
		t.Fatalf("acks (%d) != logical emits (%d)", rt.Acks, rt.Emits)
	}
}

// Identical seed + spec must be byte-identical at any shard count:
// results, final simulated time, fault verdict counts, and the protocol
// counters all agree across 1, 2 and GOMAXPROCS shards.
func TestResilientShuffleShardInvariance(t *testing.T) {
	plan := mustPlan(t, "drop=0.04,dup=0.02", 7)
	refSums, refApplies, refFinal, refFC, refRT := chaosRun(t, plan, 1, true)
	for _, shards := range []int{2, runtime.GOMAXPROCS(0)} {
		sums, applies, final, fc, rt := chaosRun(t, plan, shards, true)
		if !eqU64(sums, refSums) || !eqU64(applies, refApplies) {
			t.Fatalf("shards=%d: application results diverged", shards)
		}
		if final != refFinal {
			t.Fatalf("shards=%d: final time %d != %d", shards, final, refFinal)
		}
		if fc != refFC {
			t.Fatalf("shards=%d: fault counts %+v != %+v", shards, fc, refFC)
		}
		if rt != refRT {
			t.Fatalf("shards=%d: resilience totals %+v != %+v", shards, rt, refRT)
		}
	}
}

// A fail-stopped spare node (outside the app's lane set) must not perturb
// application results; faults that can reach app lanes still recover.
func TestFailStopSpareNode(t *testing.T) {
	run := func(plan *fault.Plan) []uint64 {
		cfg := updown.Config{Nodes: 2, Shards: 1, MaxTime: 1 << 36, Fault: plan,
			Resilience: &kvmsr.Resilience{}}
		m, err := updown.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const nKeys = 400
		sums := make([]uint64, 53)
		var inv *kvmsr.Invocation
		mapEv := m.Prog.Define("fs_map", func(c *updown.Ctx) {
			inv.Emit(c, c.Op(0)%53, c.Op(0)+1)
			inv.Return(c, c.Cont())
			c.YieldTerminate()
		})
		reduceEv := m.Prog.Define("fs_reduce", func(c *updown.Ctx) {
			atomic.AddUint64(&sums[c.Op(0)], c.Op(1))
			inv.ReduceDone(c)
			c.YieldTerminate()
		})
		done := m.Prog.Define("fs_done", func(c *updown.Ctx) { c.YieldTerminate() })
		// Restrict the app to node 0: node 1 is the spare that fail-stops.
		lanes := kvmsr.LaneSet{First: 0, Count: m.Arch.LanesPerNode()}
		inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
			Name: "fs", MapEvent: mapEv, ReduceEvent: reduceEv,
			Lanes: lanes, Resilience: m.Resilience,
		})
		m.StartWithCont(inv.LaunchEvw(), updown.EvwNew(0, done), nKeys)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return sums
	}
	plan := mustPlan(t, "drop=0.05,failstop=1@100000", 11)
	if !eqU64(run(plan), run(nil)) {
		t.Fatal("results diverged with a fail-stopped spare node")
	}
}

// With resilience on but no fault plan, results match the classic
// (non-resilient) shuffle and the protocol records no recovery activity.
func TestResilientMatchesClassicWithoutFaults(t *testing.T) {
	classicSums, classicApplies, _, _, _ := chaosRun(t, nil, 1, false)
	sums, applies, _, _, rt := chaosRun(t, nil, 1, true)
	if !eqU64(sums, classicSums) || !eqU64(applies, classicApplies) {
		t.Fatal("resilient fault-free results diverged from classic shuffle")
	}
	if rt.DupDrops != 0 {
		t.Fatalf("dedup dropped %d tuples on a perfect fabric", rt.DupDrops)
	}
	if rt.Acks != rt.Emits {
		t.Fatalf("acks (%d) != emits (%d) on a perfect fabric", rt.Acks, rt.Emits)
	}
}
