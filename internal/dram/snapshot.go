package dram

import "updown/internal/sim"

// Snapshot implements sim.Snapshotter: the controller's only mutable
// state is its bandwidth horizon and traffic counter (the backing store
// belongs to gasmem, which snapshots separately).
func (c *Controller) Snapshot(w *sim.SnapWriter) error {
	w.I64(c.busy64)
	w.I64(c.Bytes)
	return w.Err()
}

// RestoreSnapshot implements sim.Snapshotter.
func (c *Controller) RestoreSnapshot(r *sim.SnapReader) error {
	c.busy64 = r.I64()
	c.Bytes = r.I64()
	return r.Err()
}
