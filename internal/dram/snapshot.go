package dram

import "updown/internal/sim"

// Snapshot implements sim.Snapshotter: the controller's mutable state is
// its bandwidth horizon, traffic counters and the hinted-handoff log (the
// backing store belongs to gasmem, which snapshots separately).
func (c *Controller) Snapshot(w *sim.SnapWriter) error {
	w.I64(c.busy64)
	w.I64(c.Bytes)
	w.I64(c.FallbackReads)
	w.U64(uint64(len(c.hints)))
	for _, h := range c.hints {
		w.U64(uint64(h.Intended))
		w.U64(uint64(h.Kind))
		w.U64(uint64(h.NOps))
		w.U64(h.VA)
		for i := 0; i < int(h.NOps); i++ {
			w.U64(h.Ops[i])
		}
	}
	return w.Err()
}

// RestoreSnapshot implements sim.Snapshotter.
func (c *Controller) RestoreSnapshot(r *sim.SnapReader) error {
	c.busy64 = r.I64()
	c.Bytes = r.I64()
	c.FallbackReads = r.I64()
	n := r.U64()
	c.hints = nil
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		h := Hint{
			Intended: int32(r.U64()),
			Kind:     uint8(r.U64()),
			NOps:     uint8(r.U64()),
			VA:       r.U64(),
		}
		for j := 0; j < int(h.NOps) && j < len(h.Ops); j++ {
			h.Ops[j] = r.U64()
		}
		c.hints = append(c.hints, h)
	}
	return r.Err()
}
