// Package dram models each node's HBM memory system: a controller actor
// that serves split-phase read/write/fetch-add requests with a fixed access
// latency and a per-node bandwidth budget (paper Section 3: 9.4 TB/s per
// node). Requests arriving faster than the bandwidth allows queue behind a
// busy-until horizon, which is what makes the DRAMmalloc striping sweep
// (Figure 12) show its bandwidth knee.
package dram

import (
	"fmt"

	"updown/internal/arch"
	"updown/internal/gasmem"
	"updown/internal/sim"
	"updown/internal/udweave"
)

// Controller serves global-memory requests for one node. Requests are
// applied to the backing store in deterministic arrival order, which
// provides a single serialization point per node: the simulated memory is
// sequentially consistent per location.
type Controller struct {
	node int
	m    arch.Machine
	gas  *gasmem.GAS
	// busy64 is the bandwidth occupancy horizon in 1/64-cycle units;
	// at 4700 bytes/cycle a 64-byte access occupies well under a cycle,
	// so sub-cycle resolution is needed to model contention faithfully.
	busy64 int64
	// Bytes served (per-node traffic statistics).
	Bytes int64
}

// Install creates one controller per node and registers them with the
// engine. It returns the controllers for inspection.
func Install(e *sim.Engine, gas *gasmem.GAS) []*Controller {
	ctrls := make([]*Controller, e.M.Nodes)
	for n := 0; n < e.M.Nodes; n++ {
		c := &Controller{node: n, m: e.M, gas: gas}
		ctrls[n] = c
		e.SetActor(e.M.MemCtrlID(n), c)
	}
	return ctrls
}

// OnMessage implements sim.Actor.
func (c *Controller) OnMessage(env *sim.Env, m *sim.Message) {
	switch m.Kind {
	case arch.KindDRAMRead:
		va := m.Ops[0]
		n := int(m.Ops[1])
		if n <= 0 || n > sim.MaxOperands {
			panic(fmt.Sprintf("dram: read of %d words", n))
		}
		var words [sim.MaxOperands]uint64
		for i := 0; i < n; i++ {
			words[i] = c.gas.ReadU64(va + uint64(i)*gasmem.WordBytes)
		}
		delay := c.service(env, int64(n)*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, words[:n])
		}
	case arch.KindDRAMWrite:
		// Ops[0] is the address, Ops[1:] the data words. A message with no
		// operands at all is malformed (it has no address); validate like
		// KindDRAMRead does, or the unchecked n = -1 would flow negative
		// byte counts into c.Bytes and Stats.DRAMBytes. n == 0 (address
		// only) is a legal ack-only write: it stores nothing and moves
		// zero bytes, but still serializes through the controller and
		// acknowledges its continuation.
		if m.NOps == 0 {
			panic("dram: write message without an address operand")
		}
		va := m.Ops[0]
		n := int(m.NOps) - 1
		for i := 0; i < n; i++ {
			c.gas.WriteU64(va+uint64(i)*gasmem.WordBytes, m.Ops[1+i])
		}
		delay := c.service(env, int64(n)*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, nil)
		}
	case arch.KindDRAMFetchAdd:
		old := c.gas.AddU64(m.Ops[0], m.Ops[1])
		delay := c.service(env, 2*gasmem.WordBytes) // read-modify-write
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, []uint64{old})
		}
	case arch.KindDRAMFetchAddF:
		old := c.gas.ReadU64(m.Ops[0])
		sum := udweave.FloatBits(udweave.BitsFloat(old) + udweave.BitsFloat(m.Ops[1]))
		c.gas.WriteU64(m.Ops[0], sum)
		delay := c.service(env, 2*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, []uint64{old})
		}
	default:
		panic(fmt.Sprintf("dram: node %d controller received message kind %d", c.node, m.Kind))
	}
}

// service accounts bytes against the node's bandwidth and returns the
// total delay (queueing + transfer + access latency) before the response
// may leave the controller.
func (c *Controller) service(env *sim.Env, bytes int64) arch.Cycles {
	now64 := int64(env.Now()) * 64
	if c.busy64 < now64 {
		c.busy64 = now64
	}
	xfer := bytes * 64 / int64(c.m.DRAMBytesPerCycle)
	if xfer < 1 {
		xfer = 1
	}
	// Fault injection can degrade a node's effective DRAM bandwidth by an
	// integer factor (1 when no plan is installed).
	xfer *= env.DRAMSlowdown()
	c.busy64 += xfer
	c.Bytes += bytes
	env.AddDRAMTraffic(bytes, c.busy64)
	done := arch.Cycles((c.busy64 + 63) / 64)
	return done - env.Now() + c.m.DRAMLatency
}

// respond delivers words to a continuation event word after delay cycles.
func (c *Controller) respond(env *sim.Env, delay arch.Cycles, cont uint64, words []uint64) {
	dst := udweave.EvwNetworkID(cont)
	env.SendAfter(delay, dst, arch.KindEvent, cont, udweave.IGNRCONT, words...)
}
