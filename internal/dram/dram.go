// Package dram models each node's HBM memory system: a controller actor
// that serves split-phase read/write/fetch-add requests with a fixed access
// latency and a per-node bandwidth budget (paper Section 3: 9.4 TB/s per
// node). Requests arriving faster than the bandwidth allows queue behind a
// busy-until horizon, which is what makes the DRAMmalloc striping sweep
// (Figure 12) show its bandwidth knee.
//
// Under replicated placement (gasmem regions with Rep > 1) each leg of a
// write fan-out arrives at its own replica's controller and is applied to
// that node's stripe, so bandwidth and byte accounting charge each physical
// copy on the node that stores it. Hinted-handoff legs — writes whose
// replica node fail-stopped — are queued in a per-controller log and
// drained into the recovering or spare node at backfill.
package dram

import (
	"fmt"

	"updown/internal/arch"
	"updown/internal/gasmem"
	"updown/internal/sim"
	"updown/internal/udweave"
)

// Hint is one queued hinted-handoff record: a write (or fetch-add) that
// could not be delivered to the fail-stopped Intended node. Ops holds the
// data words for a write or the single delta for a fetch-add.
type Hint struct {
	Intended int32
	Kind     uint8
	NOps     uint8
	VA       uint64
	Ops      [sim.MaxOperands - 1]uint64
}

// Controller serves global-memory requests for one node. Requests are
// applied to the backing store in deterministic arrival order, which
// provides a single serialization point per node: the simulated memory is
// sequentially consistent per location.
type Controller struct {
	node int
	m    arch.Machine
	gas  *gasmem.GAS
	// busy64 is the bandwidth occupancy horizon in 1/64-cycle units;
	// at 4700 bytes/cycle a 64-byte access occupies well under a cycle,
	// so sub-cycle resolution is needed to model contention faithfully.
	busy64 int64
	// Bytes served (per-node traffic statistics).
	Bytes int64
	// FallbackReads counts read requests this controller served for
	// addresses whose primary is another (fail-stopped) node — the
	// observable face of quorum-of-one read fall-over.
	FallbackReads int64
	// hints is the hinted-handoff log, in deterministic arrival order.
	hints []Hint
}

// Install creates one controller per node and registers them with the
// engine. It returns the controllers for inspection.
func Install(e *sim.Engine, gas *gasmem.GAS) []*Controller {
	ctrls := make([]*Controller, e.M.Nodes)
	for n := 0; n < e.M.Nodes; n++ {
		c := &Controller{node: n, m: e.M, gas: gas}
		ctrls[n] = c
		e.SetActor(e.M.MemCtrlID(n), c)
	}
	return ctrls
}

// Hints returns the number of queued hinted-handoff records.
func (c *Controller) Hints() int { return len(c.hints) }

// DrainHints removes every queued hint intended for the given node and
// feeds them, in arrival order, to apply. Backfill calls it across all
// controllers in node order, so the global drain order is deterministic.
func (c *Controller) DrainHints(intended int, apply func(h Hint)) int {
	kept := c.hints[:0]
	drained := 0
	for _, h := range c.hints {
		if int(h.Intended) == intended {
			apply(h)
			drained++
		} else {
			kept = append(kept, h)
		}
	}
	c.hints = kept
	return drained
}

// OnMessage implements sim.Actor.
func (c *Controller) OnMessage(env *sim.Env, m *sim.Message) {
	switch m.Kind {
	case arch.KindDRAMRead:
		va := m.Ops[0]
		n := int(m.Ops[1])
		if n <= 0 || n > sim.MaxOperands {
			panic(fmt.Sprintf("dram: read of %d words", n))
		}
		if c.gas.Replicated() && c.gas.ReadFallback(c.node, va) {
			c.FallbackReads++
		}
		var words [sim.MaxOperands]uint64
		for i := 0; i < n; i++ {
			words[i] = c.gas.CtrlReadU64(c.node, va+uint64(i)*gasmem.WordBytes)
		}
		delay := c.service(env, int64(n)*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, words[:n])
		}
	case arch.KindDRAMWrite:
		// Ops[0] is the address, Ops[1:] the data words. A message with no
		// operands at all is malformed (it has no address); validate like
		// KindDRAMRead does, or the unchecked n = -1 would flow negative
		// byte counts into c.Bytes and Stats.DRAMBytes. n == 0 (address
		// only) is a legal ack-only write: it stores nothing and moves
		// zero bytes, but still serializes through the controller and
		// acknowledges its continuation.
		if m.NOps == 0 {
			panic("dram: write message without an address operand")
		}
		va := m.Ops[0]
		n := int(m.NOps) - 1
		for i := 0; i < n; i++ {
			c.gas.CtrlWriteU64(c.node, va+uint64(i)*gasmem.WordBytes, m.Ops[1+i])
		}
		delay := c.service(env, int64(n)*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, nil)
		}
	case arch.KindDRAMFetchAdd:
		old := c.gas.CtrlAddU64(c.node, m.Ops[0], m.Ops[1])
		delay := c.service(env, 2*gasmem.WordBytes) // read-modify-write
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, []uint64{old})
		}
	case arch.KindDRAMFetchAddF:
		old := c.gas.CtrlReadU64(c.node, m.Ops[0])
		sum := udweave.FloatBits(udweave.BitsFloat(old) + udweave.BitsFloat(m.Ops[1]))
		c.gas.CtrlWriteU64(c.node, m.Ops[0], sum)
		delay := c.service(env, 2*gasmem.WordBytes)
		if m.Cont != udweave.IGNRCONT {
			c.respond(env, delay, m.Cont, []uint64{old})
		}
	case arch.KindDRAMWriteHint, arch.KindDRAMFetchAddHint, arch.KindDRAMFetchAddFHint:
		// A write leg whose replica node fail-stopped: queue it for
		// backfill instead of applying. The record still serializes
		// through this controller's bandwidth (the bytes really arrive
		// here) and acknowledges its continuation so a coordinator-less
		// fan-out never strands the issuing thread. Fetch-add hints
		// acknowledge with 0 — the dead copy's prior value is
		// unrecoverable by definition; they only coordinate when every
		// live replica was lost mid-flight.
		if m.NOps == 0 {
			panic("dram: hint message without a header operand")
		}
		va, intended := gasmem.SplitHintOp(m.Ops[0])
		n := int(m.NOps) - 1
		h := Hint{Intended: int32(intended), Kind: m.Kind, NOps: uint8(n), VA: va}
		copy(h.Ops[:], m.Ops[1:1+n])
		c.hints = append(c.hints, h)
		bytes := int64(n) * gasmem.WordBytes
		if m.Kind != arch.KindDRAMWriteHint {
			bytes = 2 * gasmem.WordBytes
		}
		delay := c.service(env, bytes)
		if m.Cont != udweave.IGNRCONT {
			if m.Kind == arch.KindDRAMWriteHint {
				c.respond(env, delay, m.Cont, nil)
			} else {
				c.respond(env, delay, m.Cont, []uint64{0})
			}
		}
	default:
		panic(fmt.Sprintf("dram: node %d controller received message kind %d", c.node, m.Kind))
	}
}

// service accounts bytes against the node's bandwidth and returns the
// total delay (queueing + transfer + access latency) before the response
// may leave the controller.
func (c *Controller) service(env *sim.Env, bytes int64) arch.Cycles {
	now64 := int64(env.Now()) * 64
	if c.busy64 < now64 {
		c.busy64 = now64
	}
	xfer := bytes * 64 / int64(c.m.DRAMBytesPerCycle)
	if xfer < 1 {
		xfer = 1
	}
	// Fault injection can degrade a node's effective DRAM bandwidth by an
	// integer factor (1 when no plan is installed).
	xfer *= env.DRAMSlowdown()
	c.busy64 += xfer
	c.Bytes += bytes
	env.AddDRAMTraffic(bytes, c.busy64)
	done := arch.Cycles((c.busy64 + 63) / 64)
	return done - env.Now() + c.m.DRAMLatency
}

// respond delivers words to a continuation event word after delay cycles.
func (c *Controller) respond(env *sim.Env, delay arch.Cycles, cont uint64, words []uint64) {
	dst := udweave.EvwNetworkID(cont)
	env.SendAfter(delay, dst, arch.KindEvent, cont, udweave.IGNRCONT, words...)
}
