package dram_test

import (
	"testing"

	"updown/internal/arch"
	"updown/internal/dram"
	"updown/internal/gasmem"
	"updown/internal/sim"
	"updown/internal/udweave"
)

// rig wires an engine with controllers and one scripted lane.
type rig struct {
	m   arch.Machine
	eng *sim.Engine
	gas *gasmem.GAS
}

func newRig(t *testing.T, nodes int, bytesPerCycle int) *rig {
	t.Helper()
	m := arch.DefaultMachine(nodes)
	if bytesPerCycle > 0 {
		m.DRAMBytesPerCycle = bytesPerCycle
	}
	gas := gasmem.New(m.Nodes, m.DRAMBytesPerNode)
	eng, err := sim.NewEngine(m, sim.Options{Shards: 1, MaxTime: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	dram.Install(eng, gas)
	return &rig{m: m, eng: eng, gas: gas}
}

type recorder struct {
	times []arch.Cycles
	ops   [][]uint64
}

func (r *recorder) OnMessage(env *sim.Env, m *sim.Message) {
	r.times = append(r.times, env.Start())
	r.ops = append(r.ops, append([]uint64(nil), m.Ops[:m.NOps]...))
}

// TestReadLatency: one read must complete no sooner than the access
// latency plus two network hops.
func TestReadLatency(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	r.gas.WriteU64(va, 1234)
	rec := &recorder{}
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, rec)
	cont := udweave.EvwExisting(lane, 0, 1)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMRead, 0, cont, va, 1)
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.times) != 1 || rec.ops[0][0] != 1234 {
		t.Fatalf("response %v %v", rec.times, rec.ops)
	}
	if rec.times[0] < r.m.DRAMLatency {
		t.Fatalf("read completed at %d, before the %d-cycle access latency", rec.times[0], r.m.DRAMLatency)
	}
}

// TestBandwidthQueueing: a burst of reads against a throttled controller
// must be spread at the configured bytes/cycle.
func TestBandwidthQueueing(t *testing.T) {
	r := newRig(t, 1, 8) // 8 bytes/cycle: one word per cycle
	va, _ := r.gas.DRAMmalloc(1<<16, 0, 1, 4096)
	rec := &recorder{}
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, rec)
	cont := udweave.EvwExisting(lane, 0, 1)
	const burst = 64
	for i := 0; i < burst; i++ {
		// 8-word (64-byte) reads: 8 cycles of transfer each.
		r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMRead, 0, cont, va+uint64(i)*64, 8)
	}
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.times) != burst {
		t.Fatalf("%d responses", len(rec.times))
	}
	spread := rec.times[burst-1] - rec.times[0]
	if spread < (burst-1)*8*9/10 {
		t.Fatalf("burst spread %d cycles; want ~%d under the 8 B/cycle budget", spread, (burst-1)*8)
	}
}

// TestWriteThenReadOrdering: a write and a subsequent read to the same
// address are applied in arrival order at the controller.
func TestWriteThenReadOrdering(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	rec := &recorder{}
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, rec)
	cont := udweave.EvwExisting(lane, 0, 1)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMWrite, 0, udweave.IGNRCONT, va, 77)
	r.eng.Post(1, r.m.MemCtrlID(0), arch.KindDRAMRead, 0, cont, va, 1)
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.ops[0][0] != 77 {
		t.Fatalf("read returned %d, want 77", rec.ops[0][0])
	}
}

// TestFetchAddInteger and float variants return the prior value and apply
// atomically in arrival order.
func TestFetchAddVariants(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	rec := &recorder{}
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, rec)
	cont := udweave.EvwExisting(lane, 0, 1)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMFetchAdd, 0, cont, va, 5)
	r.eng.Post(1, r.m.MemCtrlID(0), arch.KindDRAMFetchAdd, 0, cont, va, 7)
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.ops[0][0] != 0 || rec.ops[1][0] != 5 {
		t.Fatalf("priors %v", rec.ops)
	}
	if got := r.gas.ReadU64(va); got != 12 {
		t.Fatalf("final %d", got)
	}

	fva := va + 8
	r2 := newRig(t, 1, 0)
	fva2, _ := r2.gas.DRAMmalloc(4096, 0, 1, 4096)
	_ = fva
	rec2 := &recorder{}
	r2.eng.SetActor(r2.m.LaneID(0, 0, 0), rec2)
	c2 := udweave.EvwExisting(r2.m.LaneID(0, 0, 0), 0, 1)
	r2.eng.Post(0, r2.m.MemCtrlID(0), arch.KindDRAMFetchAddF, 0, c2, fva2, udweave.FloatBits(1.5))
	r2.eng.Post(1, r2.m.MemCtrlID(0), arch.KindDRAMFetchAddF, 0, c2, fva2, udweave.FloatBits(2.25))
	if _, err := r2.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := udweave.BitsFloat(r2.gas.ReadU64(fva2)); got != 3.75 {
		t.Fatalf("float accumulator %v", got)
	}
}

// TestIgnoredContinuationSendsNothing: writes without a continuation must
// not generate responses.
func TestIgnoredContinuationSendsNothing(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMWrite, 0, udweave.IGNRCONT, va, 9)
	stats, err := r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sends != 0 {
		t.Fatalf("%d sends for an unacknowledged write", stats.Sends)
	}
	if r.gas.ReadU64(va) != 9 {
		t.Fatal("write not applied")
	}
}

// TestStatsAccountingMixedKinds pins the engine's DRAM accounting under a
// mix of request kinds: exact DRAMReads/DRAMWrites/DRAMBytes. It is the
// regression test for the missing KindDRAMFetchAddF case in the stats
// switch — float fetch-adds (PageRank's hot path) are read-modify-writes
// and must be counted as writes, like KindDRAMFetchAdd.
func TestStatsAccountingMixedKinds(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, &recorder{})
	cont := udweave.EvwExisting(lane, 0, 1)

	// 3 reads of 2 words, 2 writes of 3 data words, 1 integer fetch-add,
	// 2 float fetch-adds.
	for i := 0; i < 3; i++ {
		r.eng.Post(arch.Cycles(i), r.m.MemCtrlID(0), arch.KindDRAMRead, 0, cont, va, 2)
	}
	for i := 0; i < 2; i++ {
		r.eng.Post(arch.Cycles(10+i), r.m.MemCtrlID(0), arch.KindDRAMWrite, 0, cont,
			va+64*uint64(i), 1, 2, 3)
	}
	r.eng.Post(20, r.m.MemCtrlID(0), arch.KindDRAMFetchAdd, 0, cont, va, 5)
	r.eng.Post(21, r.m.MemCtrlID(0), arch.KindDRAMFetchAddF, 0, cont, va+8, udweave.FloatBits(1.5))
	r.eng.Post(22, r.m.MemCtrlID(0), arch.KindDRAMFetchAddF, 0, cont, va+8, udweave.FloatBits(2.5))

	stats, err := r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DRAMReads != 3 {
		t.Errorf("DRAMReads = %d, want 3", stats.DRAMReads)
	}
	// 2 writes + 1 fetch-add + 2 float fetch-adds, all read-modify-writes.
	if stats.DRAMWrites != 5 {
		t.Errorf("DRAMWrites = %d, want 5 (float fetch-adds must count)", stats.DRAMWrites)
	}
	// reads 3x2x8 + writes 2x3x8 + fetch-adds 3x16 (read-modify-write).
	want := int64(3*2*8 + 2*3*8 + 3*16)
	if stats.DRAMBytes != want {
		t.Errorf("DRAMBytes = %d, want %d", stats.DRAMBytes, want)
	}
}

// TestWriteWithoutAddressPanics is the regression test for the unvalidated
// n = NOps-1 in the write path: a zero-operand write used to flow n = -1
// and *negative* bytes into the accounting; it must panic like a malformed
// read does.
func TestWriteWithoutAddressPanics(t *testing.T) {
	r := newRig(t, 1, 0)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMWrite, 0, udweave.IGNRCONT)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-operand DRAM write did not panic")
		}
	}()
	r.eng.Run()
}

// TestAckOnlyWrite: a write carrying only the address is legal — it stores
// nothing and accounts zero bytes, but still acknowledges.
func TestAckOnlyWrite(t *testing.T) {
	r := newRig(t, 1, 0)
	va, _ := r.gas.DRAMmalloc(4096, 0, 1, 4096)
	rec := &recorder{}
	lane := r.m.LaneID(0, 0, 0)
	r.eng.SetActor(lane, rec)
	r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMWrite, 0, udweave.EvwExisting(lane, 0, 1), va)
	stats, err := r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.times) != 1 {
		t.Fatalf("%d acks, want 1", len(rec.times))
	}
	if stats.DRAMBytes != 0 {
		t.Fatalf("DRAMBytes = %d for an ack-only write, want 0", stats.DRAMBytes)
	}
	if stats.DRAMWrites != 1 {
		t.Fatalf("DRAMWrites = %d, want 1", stats.DRAMWrites)
	}
}

// TestPerNodeBandwidthIndependent: two nodes' controllers serve their own
// queues; traffic to node 0 does not delay node 1.
func TestPerNodeBandwidthIndependent(t *testing.T) {
	r := newRig(t, 2, 8)
	// Region striped one block per node.
	va, _ := r.gas.DRAMmalloc(2*4096, 0, 2, 4096)
	rec0 := &recorder{}
	rec1 := &recorder{}
	l0, l1 := r.m.LaneID(0, 0, 0), r.m.LaneID(1, 0, 0)
	r.eng.SetActor(l0, rec0)
	r.eng.SetActor(l1, rec1)
	// Flood node 0.
	for i := 0; i < 100; i++ {
		r.eng.Post(0, r.m.MemCtrlID(0), arch.KindDRAMRead, 0,
			udweave.EvwExisting(l0, 0, 1), va, 8)
	}
	// One read on node 1 (second block of the region).
	r.eng.Post(0, r.m.MemCtrlID(1), arch.KindDRAMRead, 0,
		udweave.EvwExisting(l1, 0, 1), va+4096, 1)
	if _, err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec1.times) != 1 {
		t.Fatal("node 1 read lost")
	}
	if rec1.times[0] > rec0.times[5] {
		t.Fatalf("node 1 (%d) queued behind node 0 traffic (%d)", rec1.times[0], rec0.times[5])
	}
}
