// Package graph provides the graph substrate for the UpDown applications:
// in-memory CSR structures (vertex array + neighbor list, the paper's
// representation), deterministic workload generators (RMAT, Erdős–Rényi,
// Forest Fire), the split_and_shuffle preprocessing that caps vertex
// degree, the binary *_gv.bin / *_nl.bin interchange format, and loading
// into the simulated machine's global address space.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge.
type Edge struct {
	Src, Dst uint32
}

// Graph is a CSR adjacency structure: the out-neighbors of vertex v are
// Neigh[Offsets[v]:Offsets[v+1]].
type Graph struct {
	N       int
	Offsets []uint64
	Neigh   []uint32
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() uint64 { return uint64(len(g.Neigh)) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbor slice of v (shared storage; do not
// modify).
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Neigh[g.Offsets[v]:g.Offsets[v+1]]
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := uint32(0); int(v) < g.N; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// BuildOptions controls FromEdges.
type BuildOptions struct {
	// Undirected adds the reverse of every edge.
	Undirected bool
	// Dedup removes duplicate edges (after reversal).
	Dedup bool
	// DropSelfLoops removes v->v edges.
	DropSelfLoops bool
	// SortNeighbors sorts each adjacency list ascending (required by the
	// triangle-counting intersection).
	SortNeighbors bool
}

// FromEdges builds a CSR graph over n vertices. It mirrors the paper's
// `tsv` preprocessing (eliminate duplicate edges, sort by source).
func FromEdges(n int, edges []Edge, opt BuildOptions) *Graph {
	work := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) outside vertex range %d", e.Src, e.Dst, n))
		}
		if opt.DropSelfLoops && e.Src == e.Dst {
			continue
		}
		work = append(work, e)
		if opt.Undirected && e.Src != e.Dst {
			work = append(work, Edge{e.Dst, e.Src})
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Src != work[j].Src {
			return work[i].Src < work[j].Src
		}
		return work[i].Dst < work[j].Dst
	})
	if opt.Dedup {
		out := work[:0]
		for i, e := range work {
			if i == 0 || e != work[i-1] {
				out = append(out, e)
			}
		}
		work = out
	}
	g := &Graph{N: n, Offsets: make([]uint64, n+1), Neigh: make([]uint32, len(work))}
	for i, e := range work {
		g.Offsets[e.Src]++
		g.Neigh[i] = e.Dst
	}
	var sum uint64
	for v := 0; v <= n; v++ {
		c := uint64(0)
		if v < n {
			c = g.Offsets[v]
		}
		g.Offsets[v] = sum
		sum += c
	}
	if !opt.SortNeighbors {
		return g
	}
	// work was already sorted (src, dst), so lists are sorted; nothing
	// further to do — kept explicit for clarity.
	return g
}

// Validate checks structural invariants (testing aid).
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d for %d vertices", len(g.Offsets), g.N)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != uint64(len(g.Neigh)) {
		return fmt.Errorf("graph: offset endpoints wrong")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	for _, d := range g.Neigh {
		if int(d) >= g.N {
			return fmt.Errorf("graph: neighbor %d out of range", d)
		}
	}
	return nil
}
