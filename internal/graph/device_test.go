package graph

import (
	"testing"

	"updown/internal/gasmem"
)

func TestLoadToGAS(t *testing.T) {
	g := FromEdges(64, DefaultRMAT(6, 9), BuildOptions{Dedup: true, SortNeighbors: true})
	s := Split(g, 8)
	gas := gasmem.New(4, 1<<30)
	d, err := LoadToGAS(gas, s, DefaultPlacement(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); int(v) < s.N; v++ {
		if got := gas.ReadU64(d.FieldVA(v, VDegree)); got != uint64(s.Degree(v)) {
			t.Fatalf("vertex %d degree %d, want %d", v, got, s.Degree(v))
		}
		if got := gas.ReadU64(d.FieldVA(v, VTotalDeg)); got != uint64(s.TotalDeg[v]) {
			t.Fatalf("vertex %d totalDeg %d, want %d", v, got, s.TotalDeg[v])
		}
		if got := gas.ReadU64(d.FieldVA(v, VParent)); got != uint64(s.Parent[v]) {
			t.Fatalf("vertex %d parent field %d, want %d", v, got, s.Parent[v])
		}
		// Walk the device neighbor list and compare.
		nva := gas.ReadU64(d.FieldVA(v, VNeighVA))
		for i, want := range s.Neighbors(v) {
			if got := gas.ReadU64(nva + uint64(i)*gasmem.WordBytes); got != uint64(want) {
				t.Fatalf("vertex %d neighbor %d = %d, want %d", v, i, got, want)
			}
		}
	}
}

func TestPlacementRespectsNRNodes(t *testing.T) {
	g := FromEdges(256, DefaultRMAT(8, 1), BuildOptions{Dedup: true})
	s := Split(g, 1024)
	gas := gasmem.New(8, 1<<30)
	// Stripe over only the first 2 nodes.
	d, err := LoadToGAS(gas, s, Placement{FirstNode: 0, NRNodes: 2, BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); int(v) < s.N; v += 17 {
		if node := gas.NodeOf(d.RecordVA(v)); node > 1 {
			t.Fatalf("vertex %d on node %d, want <= 1", v, node)
		}
	}
}
