package graph

import (
	"fmt"

	"updown/internal/prng"
)

// RMATEdges generates 2^scale vertices with edgeFactor*2^scale edges using
// the recursive-matrix model of Chakrabarti et al. The paper's synthetic
// graphs use a = 0.57, b = c = 0.19 and an edge factor of 16 (artifact
// appendix). Generation is fully deterministic in the seed.
func RMATEdges(scale, edgeFactor int, a, b, c float64, seed uint64) []Edge {
	if a+b+c >= 1.0 {
		panic(fmt.Sprintf("graph: RMAT probabilities a+b+c = %v must be < 1", a+b+c))
	}
	n := 1 << scale
	m := n * edgeFactor
	rng := prng.NewStream(seed)
	edges := make([]Edge, m)
	for i := range edges {
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = Edge{uint32(src), uint32(dst)}
	}
	return edges
}

// DefaultRMAT uses the paper's parameters (a=0.57, b=c=0.19, ef=16).
func DefaultRMAT(scale int, seed uint64) []Edge {
	return RMATEdges(scale, 16, 0.57, 0.19, 0.19, seed)
}

// ErdosRenyiEdges generates n*avgDeg uniformly random edges — the paper's
// Erdős–Rényi workload (its scale-28 ER graph is where PR peaks).
func ErdosRenyiEdges(n int, avgDeg int, seed uint64) []Edge {
	rng := prng.NewStream(seed)
	m := n * avgDeg
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return edges
}

// ForestFireEdges grows a graph by the Forest Fire model (simplified
// Leskovec et al.): each new vertex links to an ambassador and recursively
// "burns" a geometric number of the ambassador's neighbors. pForward is
// the forward-burning probability. Produces heavy-tailed degree and
// community structure distinct from RMAT.
func ForestFireEdges(n int, pForward float64, seed uint64) []Edge {
	rng := prng.NewStream(seed)
	adj := make([][]uint32, n)
	var edges []Edge
	link := func(u, v uint32) {
		edges = append(edges, Edge{u, v})
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	burned := make(map[uint32]bool)
	var queue []uint32
	for v := 1; v < n; v++ {
		amb := uint32(rng.Intn(v))
		for k := range burned {
			delete(burned, k)
		}
		queue = queue[:0]
		burned[uint32(v)] = true
		burned[amb] = true
		link(uint32(v), amb)
		queue = append(queue, amb)
		// Bounded burn so generation stays near-linear.
		budget := 16
		for len(queue) > 0 && budget > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if burned[w] || budget <= 0 {
					continue
				}
				if rng.Float64() < pForward {
					burned[w] = true
					budget--
					link(uint32(v), w)
					queue = append(queue, w)
				}
			}
		}
	}
	return edges
}

// Preset names a reduced-scale stand-in for one of the paper's datasets.
// The proprietary-scale SNAP graphs (soc-LiveJournal, com-orkut, Twitter,
// friendster) do not fit a host-scale simulation; these presets reproduce
// each graph's qualitative character — skew and relative density — at a
// configurable scale, which is what the scaling shapes in Figure 9 depend
// on.
type Preset struct {
	Name string
	// Build generates the edge list at the given scale (log2 vertices).
	Build func(scale int, seed uint64) []Edge
	// Undirected marks presets built symmetrically.
	Undirected bool
}

// Presets lists the workloads used across the benchmark harness.
var Presets = []Preset{
	{Name: "rmat", Build: func(s int, seed uint64) []Edge {
		return DefaultRMAT(s, seed)
	}},
	{Name: "erdos-renyi", Build: func(s int, seed uint64) []Edge {
		return ErdosRenyiEdges(1<<s, 16, seed)
	}},
	{Name: "forest-fire", Build: func(s int, seed uint64) []Edge {
		return ForestFireEdges(1<<s, 0.35, seed)
	}, Undirected: true},
	// soc-livej stand-in: moderate skew, moderate density.
	{Name: "soc-livej", Build: func(s int, seed uint64) []Edge {
		return RMATEdges(s, 12, 0.52, 0.22, 0.22, seed)
	}},
	// com-orkut stand-in: denser, flatter degree distribution,
	// undirected.
	{Name: "com-orkut", Build: func(s int, seed uint64) []Edge {
		return RMATEdges(s, 20, 0.45, 0.22, 0.22, seed)
	}, Undirected: true},
	// twitter stand-in: heavy skew.
	{Name: "twitter", Build: func(s int, seed uint64) []Edge {
		return RMATEdges(s, 18, 0.62, 0.17, 0.17, seed)
	}},
	// friendster stand-in: large, mild skew, undirected.
	{Name: "friendster", Build: func(s int, seed uint64) []Edge {
		return RMATEdges(s, 14, 0.50, 0.20, 0.20, seed)
	}, Undirected: true},
}

// PresetByName finds a preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("graph: unknown preset %q", name)
}
