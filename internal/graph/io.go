package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary interchange format mirroring the paper's preprocessing outputs:
// *_gv.bin holds the vertex array (per vertex: degree and neighbor-list
// offset, as 64-bit little-endian words, preceded by a header), *_nl.bin
// holds the neighbor list as 64-bit words.

const gvMagic uint64 = 0x5544_4756 // "UDGV"
const nlMagic uint64 = 0x5544_4e4c // "UDNL"

// WriteGV writes the vertex array.
func WriteGV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{gvMagic, uint64(g.N)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for v := 0; v <= g.N; v++ {
		if err := binary.Write(bw, binary.LittleEndian, g.Offsets[v]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNL writes the neighbor list.
func WriteNL(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, []uint64{nlMagic, g.NumEdges()}); err != nil {
		return err
	}
	buf := make([]uint64, 0, 4096)
	for _, d := range g.Neigh {
		buf = append(buf, uint64(d))
		if len(buf) == cap(buf) {
			if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGVNL reconstructs a graph from the two binary streams.
func ReadGVNL(gv, nl io.Reader) (*Graph, error) {
	br := bufio.NewReader(gv)
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: gv header: %w", err)
	}
	if hdr[0] != gvMagic {
		return nil, fmt.Errorf("graph: bad gv magic %#x", hdr[0])
	}
	n := int(hdr[1])
	g := &Graph{N: n, Offsets: make([]uint64, n+1)}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: gv offsets: %w", err)
	}
	nr := bufio.NewReader(nl)
	if err := binary.Read(nr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: nl header: %w", err)
	}
	if hdr[0] != nlMagic {
		return nil, fmt.Errorf("graph: bad nl magic %#x", hdr[0])
	}
	m := int(hdr[1])
	if uint64(m) != g.Offsets[n] {
		return nil, fmt.Errorf("graph: nl edge count %d != gv %d", m, g.Offsets[n])
	}
	g.Neigh = make([]uint32, m)
	buf := make([]uint64, 4096)
	for read := 0; read < m; {
		chunk := len(buf)
		if m-read < chunk {
			chunk = m - read
		}
		if err := binary.Read(nr, binary.LittleEndian, buf[:chunk]); err != nil {
			return nil, fmt.Errorf("graph: nl data: %w", err)
		}
		for i := 0; i < chunk; i++ {
			g.Neigh[read+i] = uint32(buf[i])
		}
		read += chunk
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadEdgeList parses a plain-text edge list ("src dst" per line, # or %
// comments, optional skip of leading lines — the paper's -l offset flag)
// and returns the edges plus the vertex count (max ID + 1).
func ReadEdgeList(r io.Reader, skipLines int) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		if line <= skipLines {
			continue
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want 'src dst', got %q", line, text)
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %w", line, err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %w", line, err)
		}
		edges = append(edges, Edge{uint32(s), uint32(d)})
		if int(s) > maxID {
			maxID = int(s)
		}
		if int(d) > maxID {
			maxID = int(d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, maxID + 1, nil
}

// WriteEdgeList writes edges as text (for the rmatgen tool).
func WriteEdgeList(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}
