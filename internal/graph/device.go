package graph

import (
	"updown/internal/gasmem"
)

// Device layout: the two global data structures of Section 4.1.1 — the
// vertex array and the neighbor-list array — both distributed with
// DRAMmalloc across the machine. Every application (PR, BFS, TC) shares
// this record layout.

// VertexStride is the number of 64-bit words per vertex record.
const VertexStride = 8

// Vertex record word indices.
const (
	// VDegree is the split vertex's own out-degree.
	VDegree = iota
	// VNeighVA is the virtual address of its first out-neighbor.
	VNeighVA
	// VTotalDeg is the original vertex's total out-degree (PageRank
	// divides contributions by this).
	VTotalDeg
	// VValue is the primary per-vertex value (PageRank value bits, BFS
	// distance).
	VValue
	// VAux is the secondary value (next PageRank accumulator, BFS
	// parent).
	VAux
	// VSubStart / VSubCount give the original's extra sub-vertices.
	VSubStart
	VSubCount
	// VParent is the original vertex this split vertex belongs to.
	VParent
)

// DeviceGraph is a SplitGraph materialized in the global address space.
type DeviceGraph struct {
	G *SplitGraph
	// VertexVA is the vertex array base; record v is at
	// VertexVA + v*VertexStride*8.
	VertexVA gasmem.VA
	// NeighVA is the neighbor-list base (one word per edge, holding the
	// destination's ORIGINAL vertex ID).
	NeighVA gasmem.VA
}

// Placement configures the DRAMmalloc distribution of the two arrays —
// the knob swept by the paper's Figure 12.
type Placement struct {
	// FirstNode and NRNodes select the memory nodes (NRNodes must be a
	// power of two).
	FirstNode, NRNodes int
	// BlockBytes is the striping block size (default 32 KiB, the paper's
	// Section 4.1.1 default).
	BlockBytes uint64
}

// DefaultPlacement stripes over all nodes in 32 KiB blocks.
func DefaultPlacement(nodes int) Placement {
	return Placement{FirstNode: 0, NRNodes: nodes, BlockBytes: 32 << 10}
}

// LoadToGAS allocates and fills the device arrays.
func LoadToGAS(gas *gasmem.GAS, s *SplitGraph, pl Placement) (*DeviceGraph, error) {
	if pl.BlockBytes == 0 {
		pl.BlockBytes = 32 << 10
	}
	vBytes := uint64(s.N) * VertexStride * gasmem.WordBytes
	nBytes := uint64(len(s.Neigh)) * gasmem.WordBytes
	if nBytes == 0 {
		nBytes = gasmem.WordBytes
	}
	vertexVA, err := gas.DRAMmalloc(vBytes, pl.FirstNode, pl.NRNodes, pl.BlockBytes)
	if err != nil {
		return nil, err
	}
	neighVA, err := gas.DRAMmalloc(nBytes, pl.FirstNode, pl.NRNodes, pl.BlockBytes)
	if err != nil {
		return nil, err
	}
	d := &DeviceGraph{G: s, VertexVA: vertexVA, NeighVA: neighVA}
	rec := make([]uint64, VertexStride)
	for v := uint32(0); int(v) < s.N; v++ {
		rec[VDegree] = uint64(s.Degree(v))
		rec[VNeighVA] = neighVA + s.Offsets[v]*gasmem.WordBytes
		rec[VTotalDeg] = uint64(s.TotalDeg[v])
		rec[VValue] = 0
		rec[VAux] = 0
		// Members are consecutive: a base member's sub-vertices are
		// [v+1, v+1+SubCount].
		rec[VSubStart] = uint64(v + 1)
		rec[VSubCount] = uint64(s.SubCount[v])
		rec[VParent] = uint64(s.Parent[v])
		gas.WriteWords(d.RecordVA(v), rec)
	}
	for i, dst := range s.Neigh {
		gas.WriteU64(neighVA+uint64(i)*gasmem.WordBytes, uint64(dst))
	}
	return d, nil
}

// RecordVA returns the address of vertex v's record.
func (d *DeviceGraph) RecordVA(v uint32) gasmem.VA {
	return d.VertexVA + uint64(v)*VertexStride*gasmem.WordBytes
}

// FieldVA returns the address of one field of vertex v's record.
func (d *DeviceGraph) FieldVA(v uint32, field int) gasmem.VA {
	return d.RecordVA(v) + uint64(field)*gasmem.WordBytes
}
