package graph

import (
	"fmt"

	"updown/internal/prng"
)

// SplitGraph is the output of the paper's split_and_shuffle preprocessing:
// high-degree vertices are split into sub-vertices so no out-list exceeds
// MaxDeg, "yet yields the correct result for the original graph"
// (Section 5.2.1), and the vertex order is shuffled so that the work of
// split hubs spreads evenly over the Block computation binding's
// contiguous key ranges — without the shuffle, all sub-vertices would
// cluster in a few lanes' ranges and serialize the map phase.
//
// Vertex IDs are relabeled: each original vertex becomes a "base" member
// followed immediately by its sub-vertices (members are consecutive), and
// the base members appear in shuffled order. Out-neighbor lists reference
// the BASE member of the destination, so pushed updates (PageRank
// contributions, BFS discoveries) land on the vertex that owns the
// original's state; only out-edge work is partitioned across members.
type SplitGraph struct {
	*Graph
	// OrigN is the original vertex count.
	OrigN int
	// MaxDeg is the configured cap.
	MaxDeg int
	// Parent maps every split vertex to its base member (identity for
	// base members).
	Parent []uint32
	// SubCount gives a base member's extra sub-vertices; they occupy IDs
	// [v+1, v+1+SubCount[v]]. Zero for sub-vertices.
	SubCount []uint32
	// TotalDeg is, for every split vertex, the total out-degree of its
	// original vertex (PageRank divides contributions by this).
	TotalDeg []uint32
	// NewID maps an original input vertex ID to its base member.
	NewID []uint32
	// OrigID maps any split vertex back to its original input ID.
	OrigID []uint32
}

// SplitOptions configures the preprocessing.
type SplitOptions struct {
	// MaxDeg caps member out-degree (<= 0: no cap).
	MaxDeg int
	// Seed drives the shuffle; 0 disables it (identity order).
	Seed uint64
	// SpreadInEdges relabels each neighbor-list entry to a
	// pseudo-random MEMBER of the destination instead of its base, so
	// pushed per-edge updates to a high-in-degree vertex spread over its
	// members' reduce lanes instead of serializing on one. PageRank uses
	// this (the member accumulators are re-aggregated in its apply
	// phase); BFS must not (its discovery dedup is per base member).
	SpreadInEdges bool
}

// DefaultShuffleSeed is the deterministic shuffle used by Split.
const DefaultShuffleSeed = 0x5EED

// Split applies split_and_shuffle with the default deterministic shuffle.
func Split(g *Graph, maxDeg int) *SplitGraph {
	return SplitWith(g, SplitOptions{MaxDeg: maxDeg, Seed: DefaultShuffleSeed})
}

// SplitSeeded is Split with an explicit shuffle seed; seed 0 disables the
// shuffle (identity order), which is occasionally useful in tests.
func SplitSeeded(g *Graph, maxDeg int, seed uint64) *SplitGraph {
	return SplitWith(g, SplitOptions{MaxDeg: maxDeg, Seed: seed})
}

// SplitWith applies the full preprocessing.
func SplitWith(g *Graph, opt SplitOptions) *SplitGraph {
	maxDeg, seed := opt.MaxDeg, opt.Seed
	if maxDeg <= 0 {
		maxDeg = int(^uint32(0) >> 1)
	}
	// Shuffled processing order of the original vertices.
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	if seed != 0 {
		rng := prng.NewStream(seed)
		for i := g.N - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}
	// First pass: member counts fix the new ID of every base member.
	members := func(d int) int {
		if d <= maxDeg {
			return 1
		}
		return (d + maxDeg - 1) / maxDeg
	}
	n2 := 0
	for v := 0; v < g.N; v++ {
		n2 += members(g.Degree(uint32(v)))
	}
	s := &SplitGraph{
		Graph:    &Graph{N: n2, Offsets: make([]uint64, n2+1)},
		OrigN:    g.N,
		MaxDeg:   maxDeg,
		Parent:   make([]uint32, n2),
		SubCount: make([]uint32, n2),
		TotalDeg: make([]uint32, n2),
		NewID:    make([]uint32, g.N),
		OrigID:   make([]uint32, n2),
	}
	next := uint32(0)
	for _, orig := range order {
		s.NewID[orig] = next
		next += uint32(members(g.Degree(orig)))
	}
	// Second pass: lay out members and relabeled neighbor lists.
	neigh := make([]uint32, 0, len(g.Neigh))
	// Offsets must be filled per new ID; process originals in shuffled
	// (= new ID) order so neigh stays contiguous.
	for _, orig := range order {
		base := s.NewID[orig]
		lo, hi := g.Offsets[orig], g.Offsets[orig+1]
		d := int(hi - lo)
		k := members(d)
		s.SubCount[base] = uint32(k - 1)
		for m := 0; m < k; m++ {
			id := base + uint32(m)
			s.Parent[id] = base
			s.TotalDeg[id] = uint32(d)
			s.OrigID[id] = orig
			s.Offsets[id] = uint64(len(neigh))
			mlo := lo + uint64(m*maxDeg)
			mhi := mlo + uint64(maxDeg)
			if mhi > hi {
				mhi = hi
			}
			// Destinations keep original IDs here; they are
			// relabeled to base members once every NewID is known.
			neigh = append(neigh, g.Neigh[mlo:mhi]...)
		}
	}
	s.Offsets[n2] = uint64(len(neigh))
	// Relabel destinations, then restore each member's list to ascending
	// order (the triangle-counting intersection requires sorted lists;
	// push-based PR/BFS are order-insensitive).
	for i, dst := range neigh {
		base := s.NewID[dst]
		if opt.SpreadInEdges {
			if k := uint32(s.SubCount[base]) + 1; k > 1 {
				neigh[i] = base + uint32(prng.Mix64(uint64(i))%uint64(k))
				continue
			}
		}
		neigh[i] = base
	}
	s.Graph.Neigh = neigh
	for v := 0; v < n2; v++ {
		sortU32(neigh[s.Offsets[v]:s.Offsets[v+1]])
	}
	return s
}

// sortU32 sorts small uint32 slices (shell sort; adjacency lists are
// bounded by MaxDeg).
func sortU32(a []uint32) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

// Members returns the split-vertex IDs representing original input vertex
// orig: its base member followed by the sub-vertices.
func (s *SplitGraph) Members(orig uint32) []uint32 {
	base := s.NewID[orig]
	ids := make([]uint32, 1+s.SubCount[base])
	for i := range ids {
		ids[i] = base + uint32(i)
	}
	return ids
}

// IsBase reports whether a split vertex is a base member.
func (s *SplitGraph) IsBase(v uint32) bool { return s.Parent[v] == v }

// ValidateSplit checks the transformation invariants against the original.
func (s *SplitGraph) ValidateSplit(orig *Graph) error {
	if err := s.Graph.Validate(); err != nil {
		return err
	}
	if s.NumEdges() != orig.NumEdges() {
		return fmt.Errorf("graph: split changed edge count %d -> %d", orig.NumEdges(), s.NumEdges())
	}
	if s.MaxDegree() > s.MaxDeg {
		return fmt.Errorf("graph: split left degree %d > cap %d", s.MaxDegree(), s.MaxDeg)
	}
	// Per original vertex: the concatenation of its members' lists must
	// equal the original list (relabeled to base members).
	for v := uint32(0); int(v) < orig.N; v++ {
		var got []uint32
		for _, m := range s.Members(v) {
			if s.Parent[m] != s.NewID[v] {
				return fmt.Errorf("graph: member %d of %d has parent %d", m, v, s.Parent[m])
			}
			if s.OrigID[m] != v {
				return fmt.Errorf("graph: member %d of %d has OrigID %d", m, v, s.OrigID[m])
			}
			got = append(got, s.Neighbors(m)...)
		}
		// Compare in the original ID space (entries may target any
		// member of the destination under SpreadInEdges).
		for i := range got {
			got[i] = s.OrigID[got[i]]
		}
		want := append([]uint32(nil), orig.Neighbors(v)...)
		if len(got) != len(want) {
			return fmt.Errorf("graph: vertex %d out-degree %d != %d after split", v, len(got), len(want))
		}
		sortU32(got)
		sortU32(want)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("graph: vertex %d neighbor %d relabeled wrongly", v, i)
			}
		}
		if s.TotalDeg[s.NewID[v]] != uint32(len(want)) {
			return fmt.Errorf("graph: vertex %d TotalDeg %d != %d", v, s.TotalDeg[s.NewID[v]], len(want))
		}
	}
	// NewID must be a bijection onto base members.
	seen := make(map[uint32]bool, orig.N)
	for v := 0; v < orig.N; v++ {
		b := s.NewID[v]
		if seen[b] || !s.IsBase(b) {
			return fmt.Errorf("graph: NewID not a bijection at %d", v)
		}
		seen[b] = true
	}
	return nil
}
