package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}}, BuildOptions{SortNeighbors: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Fatalf("neighbors(0) = %v", ns)
	}
}

func TestFromEdgesUndirectedDedupSelfLoops(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}},
		BuildOptions{Undirected: true, Dedup: true, DropSelfLoops: true, SortNeighbors: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0-1 in both directions only.
	if g.NumEdges() != 2 || g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("unexpected shape: edges=%d degrees=%d,%d,%d",
			g.NumEdges(), g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestFromEdgesPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge accepted")
		}
	}()
	FromEdges(2, []Edge{{0, 5}}, BuildOptions{})
}

func TestRMATDeterministicAndSkewed(t *testing.T) {
	e1 := DefaultRMAT(10, 42)
	e2 := DefaultRMAT(10, 42)
	if len(e1) != 1024*16 {
		t.Fatalf("edge count %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
	e3 := DefaultRMAT(10, 43)
	same := 0
	for i := range e1 {
		if e1[i] == e3[i] {
			same++
		}
	}
	if same == len(e1) {
		t.Fatal("different seeds produced identical graphs")
	}
	// Skew: RMAT max degree must far exceed Erdős–Rényi's at equal size.
	gr := FromEdges(1024, e1, BuildOptions{Dedup: true})
	ge := FromEdges(1024, ErdosRenyiEdges(1024, 16, 42), BuildOptions{Dedup: true})
	if gr.MaxDegree() < 2*ge.MaxDegree() {
		t.Fatalf("RMAT max degree %d not clearly above ER %d", gr.MaxDegree(), ge.MaxDegree())
	}
}

func TestForestFireConnectedAndDeterministic(t *testing.T) {
	e1 := ForestFireEdges(500, 0.35, 7)
	e2 := ForestFireEdges(500, 0.35, 7)
	if len(e1) != len(e2) {
		t.Fatal("not deterministic")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("not deterministic")
		}
	}
	if len(e1) < 499 {
		t.Fatalf("too few edges: %d", len(e1))
	}
	// Every vertex > 0 must have at least one edge (the ambassador link).
	seen := make([]bool, 500)
	for _, e := range e1 {
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	for v := 1; v < 500; v++ {
		if !seen[v] {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets {
		edges := p.Build(8, 1)
		if len(edges) == 0 {
			t.Errorf("preset %s generated no edges", p.Name)
		}
		g := FromEdges(256, edges, BuildOptions{Undirected: p.Undirected, Dedup: true, DropSelfLoops: true, SortNeighbors: true})
		if err := g.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	if p, err := PresetByName("twitter"); err != nil || p.Name != "twitter" {
		t.Error("lookup failed")
	}
}

func TestSplitCapsDegreeAndPreservesEdges(t *testing.T) {
	edges := DefaultRMAT(10, 5)
	g := FromEdges(1024, edges, BuildOptions{Dedup: true, SortNeighbors: true})
	for _, cap := range []int{8, 64, 512} {
		s := Split(g, cap)
		if err := s.ValidateSplit(g); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if s.MaxDegree() > cap {
			t.Fatalf("cap %d: max degree %d", cap, s.MaxDegree())
		}
	}
}

func TestSplitNoOpBelowCap(t *testing.T) {
	g := FromEdges(8, []Edge{{0, 1}, {1, 2}, {2, 3}}, BuildOptions{})
	s := Split(g, 100)
	if s.N != g.N {
		t.Fatalf("split created %d vertices from %d without need", s.N, g.N)
	}
	if err := s.ValidateSplit(g); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMembers(t *testing.T) {
	// Star: vertex 0 has degree 10, cap 3 -> 1 original + 3 subs.
	var edges []Edge
	for i := 1; i <= 10; i++ {
		edges = append(edges, Edge{0, uint32(i)})
	}
	g := FromEdges(11, edges, BuildOptions{})
	s := Split(g, 3)
	mem := s.Members(0)
	if len(mem) != 4 {
		t.Fatalf("members = %v", mem)
	}
	base := s.NewID[0]
	total := 0
	for i, v := range mem {
		if v != base+uint32(i) {
			t.Fatalf("members not consecutive: %v", mem)
		}
		d := s.Degree(v)
		if d > 3 {
			t.Fatalf("member %d degree %d", v, d)
		}
		total += d
		if s.Parent[v] != base {
			t.Fatalf("member %d parent %d, want base %d", v, s.Parent[v], base)
		}
		if s.OrigID[v] != 0 {
			t.Fatalf("member %d OrigID %d", v, s.OrigID[v])
		}
		if s.TotalDeg[v] != 10 {
			t.Fatalf("member %d TotalDeg %d", v, s.TotalDeg[v])
		}
	}
	if total != 10 {
		t.Fatalf("members carry %d edges, want 10", total)
	}
}

func TestSplitProperty(t *testing.T) {
	f := func(seed uint64, capSel uint8) bool {
		edges := DefaultRMAT(8, seed)
		g := FromEdges(256, edges, BuildOptions{Dedup: true})
		cap := []int{4, 16, 100}[capSel%3]
		s := Split(g, cap)
		return s.ValidateSplit(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinaryIORoundTrip(t *testing.T) {
	g := FromEdges(512, DefaultRMAT(9, 3), BuildOptions{Dedup: true, SortNeighbors: true})
	var gv, nl bytes.Buffer
	if err := WriteGV(&gv, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteNL(&nl, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGVNL(&gv, &nl)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatal("shape changed")
	}
	for v := uint32(0); int(v) < g.N; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbor %d changed", v, i)
			}
		}
	}
}

func TestReadGVNLRejectsGarbage(t *testing.T) {
	if _, err := ReadGVNL(strings.NewReader("not binary"), strings.NewReader("x")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := "# comment\n3 4\n1\t2\n\n% other\n0 3\n"
	edges, n, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 || n != 5 {
		t.Fatalf("edges=%v n=%d", edges, n)
	}
	// Skip the first data line via the offset flag.
	edges, _, err = ReadEdgeList(strings.NewReader("junk header\n1 2\n"), 1)
	if err != nil || len(edges) != 1 {
		t.Fatalf("skip failed: %v %v", edges, err)
	}
	if _, _, err := ReadEdgeList(strings.NewReader("1\n"), 0); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestWriteEdgeListRoundTrip(t *testing.T) {
	in := []Edge{{1, 2}, {3, 4}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, n, err := ReadEdgeList(&buf, 0)
	if err != nil || n != 5 || len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %v %d %v", out, n, err)
	}
}
