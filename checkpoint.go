package updown

// Machine-level checkpoint/restore: one versioned stream bundling the
// global address space and the engine state (which carries every actor's
// private state — lanes, DRAM controllers, auxiliary actors — through
// sim.Snapshotter). A machine restored from a checkpoint continues
// bit-identically to one that was never interrupted.
//
// The restoring process must rebuild the same machine first: same
// architecture, same program definitions (handler labels and lane-local
// slots are identified by allocation order), same auxiliary actors.
// Handler and slot counts are recorded as a cheap guard; the engine
// section additionally validates the full architecture description
// before mutating anything.

import (
	"bytes"
	"fmt"
	"io"

	"updown/internal/sim"
	"updown/internal/udweave"
)

// ErrNotQuiescent is returned (wrapped) by Checkpoint when a lane still
// holds live, non-serializable runtime state — typically a KVMSR
// invocation mid-job, whose thread and lane-local storage keep closures
// that gob cannot encode. Detect it with errors.Is and either run the
// machine to quiescence first or checkpoint at the warm-start boundary
// (graph loaded, no job started).
var ErrNotQuiescent = udweave.ErrNotQuiescent

// RestoreError is the typed error the engine section of Restore returns
// on a rejected snapshot; inspect its Kind with errors.As.
type RestoreError = sim.RestoreError

// RestoreErrorKind classifies why a snapshot was rejected.
type RestoreErrorKind = sim.RestoreErrorKind

// Re-exported RestoreError kinds.
const (
	RestoreBadMagic        = sim.RestoreBadMagic
	RestoreBadVersion      = sim.RestoreBadVersion
	RestoreMachineMismatch = sim.RestoreMachineMismatch
	RestoreShapeMismatch   = sim.RestoreShapeMismatch
	RestoreCorrupt         = sim.RestoreCorrupt
	RestoreActorFailed     = sim.RestoreActorFailed
)

const (
	mchkMagic   = "UDMCHKPT"
	mchkVersion = uint32(2) // v2: replicated gasmem regions, DRAM hint logs, failover counters
)

// Checkpoint serializes the machine's complete simulation state to w.
// It must be called between runs; pause a run at a chosen cycle with
// RunUntil first. Application state held in lanes (thread states,
// lane-local values) is serialized with encoding/gob — concrete types
// reached through interfaces must be gob.Register-ed, and values
// containing functions are not serializable: a checkpoint taken mid-job
// fails with an error naming the lane and value that satisfies
// errors.Is(err, ErrNotQuiescent), rather than dropping state.
func (m *Machine) Checkpoint(w io.Writer) error {
	if _, err := io.WriteString(w, mchkMagic); err != nil {
		return fmt.Errorf("updown: checkpoint write: %w", err)
	}
	sw := sim.NewSnapWriter(w)
	sw.U32(mchkVersion)
	sw.U64(uint64(m.Prog.NumHandlers()))
	sw.U64(uint64(m.Prog.NumSlots()))
	var gasBuf bytes.Buffer
	if err := m.GAS.Snapshot(&gasBuf); err != nil {
		return err
	}
	sw.Bytes(gasBuf.Bytes())
	var engBuf bytes.Buffer
	if err := m.Engine.Checkpoint(&engBuf); err != nil {
		return err
	}
	sw.Bytes(engBuf.Bytes())
	if err := sw.Err(); err != nil {
		return fmt.Errorf("updown: checkpoint write: %w", err)
	}
	return nil
}

// Restore rebuilds the simulation state serialized by Checkpoint into
// this machine. Mismatches — format version, program shape, machine
// architecture, actor space — are rejected with an error before any
// state is modified; errors found deeper in the stream leave the machine
// in an undefined state, and it must be discarded.
func (m *Machine) Restore(r io.Reader) error {
	magic := make([]byte, len(mchkMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != mchkMagic {
		return fmt.Errorf("updown: not a machine checkpoint (got %q)", magic)
	}
	sr := sim.NewSnapReader(r)
	if v := sr.U32(); sr.Err() == nil && v != mchkVersion {
		return fmt.Errorf("updown: checkpoint format version %d, this build reads %d", v, mchkVersion)
	}
	nh := sr.U64()
	ns := sr.U64()
	if sr.Err() == nil && (int(nh) != m.Prog.NumHandlers() || int(ns) != m.Prog.NumSlots()) {
		return fmt.Errorf("updown: checkpoint program has %d handlers and %d slots, this machine has %d and %d (define the same program before Restore)",
			nh, ns, m.Prog.NumHandlers(), m.Prog.NumSlots())
	}
	gasSec := sr.Bytes(1 << 32)
	engSec := sr.Bytes(1 << 32)
	if err := sr.Err(); err != nil {
		return fmt.Errorf("updown: truncated checkpoint: %w", err)
	}
	// Engine first: it validates the full architecture description and
	// the actor space before mutating, so the common mismatches reject
	// with both engine and GAS untouched.
	if err := m.Engine.Restore(bytes.NewReader(engSec)); err != nil {
		return err
	}
	if err := m.GAS.RestoreSnapshot(bytes.NewReader(gasSec)); err != nil {
		return err
	}
	return nil
}

// RunUntil simulates until quiescence or until the next pending message
// lies beyond cycle t, whichever comes first (pausing is not an error).
// The machine pauses in exactly the state Checkpoint serializes, so
// RunUntil + Checkpoint + (later) Restore + Run is bit-equal to one
// uninterrupted Run.
func (m *Machine) RunUntil(t Cycles) (Stats, error) { return m.Engine.RunUntil(t) }
