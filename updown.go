// Package updown is the public facade of the UpDown simulation stack: it
// assembles a simulated machine (engine, global address space, DRAM
// controllers, UDWeave program) and re-exports the types applications use.
//
// The stack reproduces the system of "KVMSR+UDWeave: Extreme-Scaling with
// Fine-grained Parallelism on the UpDown Graph Supercomputer" (SC Workshops
// '25): a fine-grained event-driven machine programmed through UDWeave
// events and the KVMSR map-shuffle-reduce library.
//
// Quickstart:
//
//	m, _ := updown.New(updown.Config{Nodes: 4})
//	hello := m.Prog.Define("hello", func(c *updown.Ctx) {
//		c.Cycles(10)
//		c.YieldTerminate()
//	})
//	m.Start(updown.EvwNew(m.Arch.LaneID(0, 0, 0), hello))
//	stats, _ := m.Run()
package updown

import (
	"fmt"

	"updown/internal/arch"
	"updown/internal/dram"
	"updown/internal/fault"
	"updown/internal/gasmem"
	"updown/internal/kvmsr"
	"updown/internal/metrics"
	"updown/internal/sim"
	"updown/internal/telemetry"
	"updown/internal/udweave"
)

// Re-exported core types so applications only import this package.
type (
	// Ctx is the execution context handed to every event handler.
	Ctx = udweave.Ctx
	// Label names a registered event handler.
	Label = udweave.Label
	// NetworkID identifies a computation location.
	NetworkID = arch.NetworkID
	// Cycles is simulated time in lane clock cycles.
	Cycles = arch.Cycles
	// Stats summarizes a simulation run.
	Stats = sim.Stats
	// VA is a virtual address in the global address space.
	VA = gasmem.VA
)

// IGNRCONT is the "no continuation" sentinel.
const IGNRCONT = udweave.IGNRCONT

// Re-exported intrinsics.
var (
	// EvwNew builds an event word for a new thread on a lane.
	EvwNew = udweave.EvwNew
	// EvwExisting builds an event word for an existing thread.
	EvwExisting = udweave.EvwExisting
	// EvwUpdateEvent swaps the label of an event word.
	EvwUpdateEvent = udweave.EvwUpdateEvent
	// FloatBits / BitsFloat convert float64 operands.
	FloatBits = udweave.FloatBits
	BitsFloat = udweave.BitsFloat
)

// Config selects the machine to simulate.
type Config struct {
	// Nodes is the UpDown node count (each node has 32 accelerators x 64
	// lanes). Required.
	Nodes int
	// Shards is the host parallelism of the simulator; 0 = auto,
	// 1 = sequential reference mode.
	Shards int
	// MaxTime bounds simulated cycles (0 = unbounded); runs exceeding it
	// return sim.ErrTimeout.
	MaxTime Cycles
	// Arch, when non-nil, overrides the full architecture description
	// (used by ablation experiments that sweep latency or bandwidth).
	Arch *arch.Machine
	// Metrics, when non-nil, enables the observability recorder: per-node
	// time series (lane occupancy, sends, DRAM traffic and backlog,
	// injection backlog, wait-queue depth) plus per-message-kind
	// breakdowns, retrievable via Machine.Metrics and exportable as a
	// Perfetto trace. Nil keeps recording disabled and the simulator at
	// full speed.
	Metrics *metrics.Options
	// Fault, when non-nil, installs a deterministic fault-injection plan
	// (message drop/dup/delay on the unreliable event class, lane stalls,
	// bandwidth degradation, node fail-stops). Verdicts depend only on the
	// plan seed and each message's (source, sequence) identity, so runs
	// with the same seed and spec are byte-identical at any shard count.
	// Nil keeps the fabric perfect and the fault paths compiled out of the
	// hot loop (nil-checked hooks).
	Fault *fault.Plan
	// Resilience, when non-nil, is handed to applications (via
	// Machine.Resilience) so they opt their KVMSR invocations into the
	// resilient shuffle: acked, sequence-numbered emits on the unreliable
	// class with timeout retransmission and idempotent apply. Required for
	// correct results under a Fault plan that targets KindEventU.
	Resilience *kvmsr.Resilience
	// Coalesce, when non-nil, is handed to applications (via
	// Machine.Coalesce) so they opt their KVMSR invocations into the
	// coalescing shuffle: per-destination pack buffers that turn several
	// emitted tuples into one multi-tuple network message, with
	// application-chosen combiners pre-reducing same-key tuples before
	// they reach the network. Nil keeps one message per tuple.
	Coalesce *kvmsr.Coalesce
	// Replication, when > 1, is the default k-way replicated placement
	// factor for every DRAMmalloc on this machine (clamped per
	// allocation to its node count): each block is stored on k
	// consecutive ring nodes, writes fan out to all copies, reads fall
	// over past fail-stopped nodes, and writes aimed at a dead node are
	// queued as hinted handoff for Machine.Backfill. Composes with a
	// Fault plan containing fail-stops: the run completes with correct
	// output and no data loss as long as fewer than k replicas of any
	// block fail. 0 or 1 keeps classic single-copy placement.
	Replication int
	// FixedLookahead selects the legacy conservative window engine (one
	// global window of MinCrossNodeLatency cycles per barrier) instead of
	// the default adaptive topology-aware scheduler. Results are
	// bit-identical either way; the flag exists for A/B measurement.
	FixedLookahead bool
	// Telemetry, when non-nil, attaches the live observation plane: the
	// engine publishes immutable in-run snapshots (progress, throughput,
	// per-node busy/backlog, fault and replication counters) through the
	// publisher at window barriers, observers read them lock-free (HTTP
	// exposition, watchdog, signal-driven dumps), and RequestStop makes
	// Run return sim.ErrInterrupted at the next quiesced point. The
	// published snapshots never touch live sim state, so telemetry
	// cannot perturb determinism; nil keeps the plane disabled at one
	// nil-check per window.
	Telemetry *telemetry.Publisher
	// Trace, when non-nil, enables the causal tracing recorder: named
	// spans (thread lifetimes, event executions, KVMSR phases, program
	// phases) and/or the per-message causal edge stream that feeds
	// critical-path extraction, latency histograms and the node-to-node
	// flow matrix. Retrievable via Machine.Trace; the zero TraceOptions
	// value enables both span and causal recording. Nil keeps tracing
	// disabled and the simulator at full speed.
	Trace *metrics.TraceOptions
}

// Machine is an assembled simulated UpDown system.
type Machine struct {
	Arch   arch.Machine
	Engine *sim.Engine
	GAS    *gasmem.GAS
	Prog   *udweave.Program
	Ctrls  []*dram.Controller
	// Metrics is the observability recorder, nil unless Config.Metrics
	// was set. After Run, Metrics.Profile() yields the merged per-node
	// series; Profile.WriteTrace exports a Perfetto-loadable trace.
	Metrics *metrics.Recorder
	// Trace is the causal tracing recorder, nil unless Config.Trace was
	// set. After Run, Trace.CriticalPath/Latencies/Flows analyze the
	// causal DAG and metrics.WriteTraceFile renders the recorded spans.
	Trace *metrics.TraceRecorder
	// Resilience echoes Config.Resilience for applications to pass into
	// their KVMSR specs; nil means the classic (reliable-fabric) shuffle.
	Resilience *kvmsr.Resilience
	// Coalesce echoes Config.Coalesce for applications to pass into
	// their KVMSR specs; nil means one shuffle message per tuple.
	Coalesce *kvmsr.Coalesce
	// Telemetry echoes Config.Telemetry so layers above the machine (the
	// job scheduler) can chain their own Aux snapshot enrichment onto the
	// one installed by New; nil when the live plane is disabled.
	Telemetry *telemetry.Publisher
}

// New assembles a machine.
func New(cfg Config) (*Machine, error) {
	var a arch.Machine
	if cfg.Arch != nil {
		a = *cfg.Arch
	} else {
		if cfg.Nodes <= 0 {
			return nil, fmt.Errorf("updown: Config.Nodes must be positive")
		}
		a = arch.DefaultMachine(cfg.Nodes)
	}
	gas := gasmem.New(a.Nodes, a.DRAMBytesPerNode)
	if cfg.Replication > 1 {
		gas.SetReplication(cfg.Replication)
	}
	var failover func(kind uint8, op0 uint64, deadNode int, at arch.Cycles) (uint8, uint64, int, bool)
	if cfg.Fault != nil {
		// Mirror the plan's fail-stops into the address space so
		// placement decisions (read fall-over, write fan-out, hinted
		// handoff) can consult node liveness, and install the engine
		// failover hook that catches DRAM messages already in flight
		// when their destination dies.
		for _, fs := range cfg.Fault.FailStops {
			gas.SetFailStop(int(fs.Node), int64(fs.At))
		}
		if cfg.Replication > 1 {
			failover = func(kind uint8, op0 uint64, deadNode int, at arch.Cycles) (uint8, uint64, int, bool) {
				switch kind {
				case arch.KindDRAMRead:
					if n, ok := gas.FailoverRead(op0, deadNode); ok {
						return kind, op0, n, true
					}
				case arch.KindDRAMWrite:
					if n, h, ok := gas.HandoffTarget(op0, deadNode); ok {
						return arch.KindDRAMWriteHint, h, n, true
					}
				case arch.KindDRAMFetchAdd:
					if n, h, ok := gas.HandoffTarget(op0, deadNode); ok {
						return arch.KindDRAMFetchAddHint, h, n, true
					}
				case arch.KindDRAMFetchAddF:
					if n, h, ok := gas.HandoffTarget(op0, deadNode); ok {
						return arch.KindDRAMFetchAddFHint, h, n, true
					}
				case arch.KindDRAMWriteHint, arch.KindDRAMFetchAddHint, arch.KindDRAMFetchAddFHint:
					// A hint whose handoff holder also died: re-handoff,
					// keeping the originally intended node in the header.
					va, intended := gasmem.SplitHintOp(op0)
					if n, h, ok := gas.HandoffTarget(va, intended); ok {
						return kind, h, n, true
					}
				}
				return 0, 0, 0, false
			}
		}
	}
	prog := udweave.NewProgram(a, gas)
	var rec *metrics.Recorder
	if cfg.Metrics != nil {
		rec = metrics.New(a.Nodes, *cfg.Metrics)
	}
	var tr *metrics.TraceRecorder
	if cfg.Trace != nil {
		tr = metrics.NewTrace(*cfg.Trace)
	}
	eng, err := sim.NewEngine(a, sim.Options{
		Shards:         cfg.Shards,
		MaxTime:        cfg.MaxTime,
		LaneFactory:    prog.NewLane,
		Metrics:        rec,
		Trace:          tr,
		Telemetry:      cfg.Telemetry,
		Fault:          cfg.Fault,
		DRAMFailover:   failover,
		FixedLookahead: cfg.FixedLookahead,
	})
	if err != nil {
		return nil, err
	}
	ctrls := dram.Install(eng, gas)
	if cfg.Telemetry != nil {
		// Aux runs in the quiesced engine context at snapshot publication,
		// so reading the controllers' replication counters is race-free.
		// Folding them into the recorder too keeps mid-run partial
		// profiles coherent; Machine.Run re-observes the final values, so
		// post-run profiles are unchanged by telemetry.
		cfg.Telemetry.Aux = func(s *telemetry.Snapshot) {
			c := replCounts(ctrls)
			s.Repl = c
			if rec != nil {
				rec.ObserveRepl(c)
			}
		}
	}
	return &Machine{Arch: a, Engine: eng, GAS: gas, Prog: prog, Ctrls: ctrls,
		Metrics: rec, Trace: tr, Resilience: cfg.Resilience, Coalesce: cfg.Coalesce,
		Telemetry: cfg.Telemetry}, nil
}

// replCounts sums the replication-layer counters across the machine's
// memory controllers: fall-over reads served and hinted-handoff records
// still queued (Backfill drains the latter to zero). All-zero for
// unreplicated machines.
func replCounts(ctrls []*dram.Controller) metrics.ReplCounts {
	var c metrics.ReplCounts
	for _, ctrl := range ctrls {
		c.FallbackReads += ctrl.FallbackReads
		c.HintsQueued += int64(ctrl.Hints())
	}
	return c
}

// LanePeek returns a resolver from lane NetworkID to its simulated actor,
// suitable for kvmsr.Invocation.ResilienceTotals/Outstanding. Valid after
// Run; peeking mid-run would race with the worker pool.
func (m *Machine) LanePeek() func(NetworkID) any {
	return func(id NetworkID) any { return m.Engine.PeekActor(id) }
}

// Start posts an initial event (time 0) triggering evw with the given
// operands; the host is the source.
func (m *Machine) Start(evw uint64, ops ...uint64) {
	m.Engine.Post(0, udweave.EvwNetworkID(evw), arch.KindEvent, evw, udweave.IGNRCONT, ops...)
}

// StartWithCont is Start with an explicit continuation word.
func (m *Machine) StartWithCont(evw, cont uint64, ops ...uint64) {
	m.Engine.Post(0, udweave.EvwNetworkID(evw), arch.KindEvent, evw, cont, ops...)
}

// StartAt posts an initial event for delivery at simulated cycle t. A
// scheduler interleaving host work with RunUntil slices uses it to
// launch a job strictly beyond the already-simulated frontier, so the
// resident machine's event order stays well defined: after RunUntil(t)
// every message at or before t has been processed, and a job posted at
// t+1 is pure future. Host-side only, engine quiesced.
func (m *Machine) StartAt(t Cycles, evw uint64, ops ...uint64) {
	m.Engine.Post(t, udweave.EvwNetworkID(evw), arch.KindEvent, evw, udweave.IGNRCONT, ops...)
}

// Run simulates to quiescence. After the run the replication-layer
// counters are folded into the metrics recorder so profiles surface
// them (WriteText "repl:" line, Summary.FallbackReads/HintsQueued).
func (m *Machine) Run() (Stats, error) {
	stats, err := m.Engine.Run()
	if m.Metrics != nil {
		m.Metrics.ObserveRepl(replCounts(m.Ctrls))
	}
	return stats, err
}

// BackfillStats reports what Machine.Backfill did.
type BackfillStats struct {
	// Hints is the number of hinted-handoff records drained into the
	// backfilled node; HintWords the data words they carried.
	Hints     int
	HintWords int
	// RepairedWords counts words the anti-entropy pass had to change
	// after the hint drain — zero when hinted handoff alone restored the
	// node byte-exactly.
	RepairedWords uint64
}

// Backfill restores a fail-stopped node's replica stripes between runs.
// With spare >= 0 the spare takes over every ring position the dead node
// occupied (Dynamo-style permanent handoff: fresh stripes on the spare);
// with spare < 0 the dead node recovers in place, keeping the stripe
// contents it held at fail-stop. Either way the queued hinted-handoff
// records for the dead node are drained, in deterministic controller
// order, into the backfill target, and an anti-entropy pass copies any
// remaining divergence from surviving peer replicas. The target then
// serves reads again for host-side access and subsequent machines warm-
// started from this GAS.
//
// Backfill is a host-side operation: call it between runs. It cannot
// resurrect the node within the simulated run that killed it — the fault
// plan is immutable for a run — but a checkpoint taken afterwards carries
// the healed, byte-canonical stores.
func (m *Machine) Backfill(dead, spare int) (BackfillStats, error) {
	var st BackfillStats
	target := dead
	if spare >= 0 {
		if err := m.GAS.Reassign(dead, spare); err != nil {
			return st, err
		}
		target = spare
	}
	for _, c := range m.Ctrls {
		st.Hints += c.DrainHints(dead, func(h dram.Hint) {
			switch h.Kind {
			case arch.KindDRAMWriteHint:
				for i := 0; i < int(h.NOps); i++ {
					m.GAS.NodeWriteU64(target, h.VA+uint64(i)*gasmem.WordBytes, h.Ops[i])
				}
				st.HintWords += int(h.NOps)
			case arch.KindDRAMFetchAddHint:
				old := m.GAS.NodeReadU64(target, h.VA)
				m.GAS.NodeWriteU64(target, h.VA, old+h.Ops[0])
				st.HintWords++
			case arch.KindDRAMFetchAddFHint:
				old := m.GAS.NodeReadU64(target, h.VA)
				sum := udweave.FloatBits(udweave.BitsFloat(old) + udweave.BitsFloat(h.Ops[0]))
				m.GAS.NodeWriteU64(target, h.VA, sum)
				st.HintWords++
			}
		})
	}
	st.RepairedWords = m.GAS.Repair(target)
	if spare < 0 {
		m.GAS.Recover(dead)
	}
	return st, nil
}

// Seconds converts simulated cycles to seconds at the machine clock.
func (m *Machine) Seconds(c Cycles) float64 { return m.Arch.Seconds(c) }
