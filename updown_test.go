package updown_test

import (
	"testing"

	"updown"
	"updown/internal/arch"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := updown.New(updown.Config{}); err == nil {
		t.Error("zero Nodes accepted")
	}
	if _, err := updown.New(updown.Config{Nodes: -1}); err == nil {
		t.Error("negative Nodes accepted")
	}
	bad := arch.DefaultMachine(2)
	bad.LatCrossNode = 0
	if _, err := updown.New(updown.Config{Arch: &bad}); err == nil {
		t.Error("invalid Arch accepted")
	}
}

func TestFacadeQuickstart(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ran bool
	hello := m.Prog.Define("hello", func(c *updown.Ctx) {
		ran = true
		c.Cycles(10)
		c.YieldTerminate()
	})
	m.Start(updown.EvwNew(m.Arch.LaneID(1, 3, 7), hello), 42)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !ran || stats.Events != 1 {
		t.Fatalf("ran=%v events=%d", ran, stats.Events)
	}
	if m.Seconds(2e9) != 1.0 {
		t.Errorf("Seconds(2e9) = %v at 2 GHz", m.Seconds(2e9))
	}
}

func TestFacadeStartWithCont(t *testing.T) {
	m, err := updown.New(updown.Config{Nodes: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	var done updown.Label
	work := m.Prog.Define("work", func(c *updown.Ctx) {
		c.Reply(c.Cont(), c.Op(0)*2)
		c.YieldTerminate()
	})
	done = m.Prog.Define("done", func(c *updown.Ctx) {
		got = append(got, c.Op(0))
		c.YieldTerminate()
	})
	m.StartWithCont(updown.EvwNew(0, work), updown.EvwNew(0, done), 21)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestFloatHelpersRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, 1e-300} {
		if updown.BitsFloat(updown.FloatBits(f)) != f {
			t.Errorf("round trip failed for %v", f)
		}
	}
}

func TestEvwHelpers(t *testing.T) {
	evw := updown.EvwNew(7, 3)
	up := updown.EvwUpdateEvent(evw, 5)
	if updown.EvwNew(7, 5) != up {
		t.Error("EvwUpdateEvent mismatch with EvwNew")
	}
	if updown.EvwExisting(7, 0, 3) == evw {
		t.Error("EvwNew must request a fresh thread, not thread 0")
	}
}
