// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure (reduced scale; the cmd/fig* tools run the same
// harnesses with larger sweeps), plus microbenchmarks for the Table 2 cost
// model, ablations of the design choices called out in DESIGN.md, and
// host-side comparators.
//
// Reported custom metrics:
//
//	sim-cycles      simulated completion time of the largest configuration
//	speedup         largest-vs-smallest configuration speedup
//	GUPS/GTEPS/...  simulated application throughput
//	host-Mev/s      host-side simulator throughput (events per second)
package updown_test

import (
	"testing"
	"time"

	"updown"
	"updown/internal/apps/pagerank"
	"updown/internal/apps/tc"
	"updown/internal/baseline"
	"updown/internal/graph"
	"updown/internal/harness"
	"updown/internal/kvmsr"
)

// benchGraph builds the shared benchmark workload.
func benchGraph(scale int, undirected bool) *graph.Graph {
	return graph.FromEdges(1<<scale, graph.DefaultRMAT(scale, 42), graph.BuildOptions{
		Undirected: undirected, Dedup: true, DropSelfLoops: true, SortNeighbors: true,
	})
}

func reportTables(b *testing.B, tables []*harness.Table) {
	b.Helper()
	last := tables[len(tables)-1]
	lastRow := last.Rows[len(last.Rows)-1]
	b.ReportMetric(float64(lastRow.Cycles), "sim-cycles")
	b.ReportMetric(lastRow.Speedup, "speedup")
	b.ReportMetric(lastRow.Metric, last.MetricName)
}

// BenchmarkFigure9PageRank regenerates Figure 9 (left) / Table 8.
func BenchmarkFigure9PageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := harness.Fig9PageRank(harness.Fig9Options{
			Scale: 12, Nodes: []int{1, 4}, Presets: []string{"rmat"},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, tables)
	}
}

// BenchmarkFigure9BFS regenerates Figure 9 (center) / Table 9.
func BenchmarkFigure9BFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := harness.Fig9BFS(harness.Fig9Options{
			Scale: 12, Nodes: []int{1, 4}, Presets: []string{"rmat"},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, tables)
	}
}

// BenchmarkFigure9TC regenerates Figure 9 (right) / Table 10.
func BenchmarkFigure9TC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := harness.Fig9TC(harness.Fig9Options{
			Scale: 10, Nodes: []int{1, 4}, Presets: []string{"rmat"},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, tables)
	}
}

// BenchmarkFigure10Ingestion regenerates Figure 10 / Table 11.
func BenchmarkFigure10Ingestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := harness.Fig10Ingestion(harness.Fig10Options{
			BaseRecords: 2000, Multipliers: []float64{1}, Nodes: []int{1, 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, tables)
	}
}

// BenchmarkFigure11PartialMatch regenerates Figure 11 / Table 12.
func BenchmarkFigure11PartialMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := harness.Fig11PartialMatch(harness.Fig11Options{
			Records: 400, LaneCounts: []int{256, 2048},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, []*harness.Table{tb})
	}
}

// BenchmarkFigure12Placement regenerates Figure 12.
func BenchmarkFigure12Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := harness.Fig12Placement(harness.Fig12Options{
			ComputeNodes: 4, MemNodes: []int{1, 4}, Scale: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportTables(b, tables)
	}
}

// BenchmarkTable2LaneOps measures the simulated cost of the fine-grained
// primitives of the paper's Table 2: a chain of minimal events (thread
// create + dispatch + send + terminate) must cost ~10 cycles each.
func BenchmarkTable2LaneOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := updown.New(updown.Config{Nodes: 1, Shards: 1})
		if err != nil {
			b.Fatal(err)
		}
		const hops = 10000
		var ev updown.Label
		ev = m.Prog.Define("hop", func(c *updown.Ctx) {
			if c.Op(0) > 0 {
				c.SendEvent(updown.EvwNew(c.NetworkID(), ev), updown.IGNRCONT, c.Op(0)-1)
			}
			c.YieldTerminate()
		})
		m.Start(updown.EvwNew(0, ev), hops)
		stats, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.FinalTime)/hops, "cycles/event")
	}
}

// BenchmarkAblationCombiningCache compares the paper's software
// fetch-and-add (scratchpad combining cache, footnote 1) against a
// memory-side atomic for PageRank's reduction.
func BenchmarkAblationCombiningCache(b *testing.B) {
	g := benchGraph(12, false)
	split := graph.Split(g, 512)
	run := func(memFA bool) updown.Cycles {
		m, err := updown.New(updown.Config{Nodes: 2})
		if err != nil {
			b.Fatal(err)
		}
		dg, err := graph.LoadToGAS(m.GAS, split, graph.DefaultPlacement(2))
		if err != nil {
			b.Fatal(err)
		}
		app, err := pagerank.New(m, dg, pagerank.Config{UseMemFetchAdd: memFA})
		if err != nil {
			b.Fatal(err)
		}
		app.InitValues()
		if _, err := app.Run(); err != nil {
			b.Fatal(err)
		}
		return app.Elapsed()
	}
	for i := 0; i < b.N; i++ {
		cc := run(false)
		mem := run(true)
		b.ReportMetric(float64(cc), "combcache-cycles")
		b.ReportMetric(float64(mem), "mematomic-cycles")
		b.ReportMetric(float64(mem)/float64(cc), "mematomic/combcache")
	}
}

// BenchmarkKVMSRShuffle compares the classic one-message-per-tuple shuffle
// against the coalescing+combining shuffle on PageRank over two nodes, and
// asserts the coalesced run puts strictly fewer shuffle messages on the
// inter-node network — the CI bench-smoke gate for the aggregation layer.
func BenchmarkKVMSRShuffle(b *testing.B) {
	g := benchGraph(12, false)
	split := graph.SplitWith(g, graph.SplitOptions{
		MaxDeg: 64, Seed: graph.DefaultShuffleSeed, SpreadInEdges: true})
	run := func(coalesce bool) (updown.Stats, updown.Cycles) {
		var coal *kvmsr.Coalesce
		if coalesce {
			coal = &kvmsr.Coalesce{}
		}
		m, err := updown.New(updown.Config{Nodes: 2, Coalesce: coal})
		if err != nil {
			b.Fatal(err)
		}
		dg, err := graph.LoadToGAS(m.GAS, split, graph.DefaultPlacement(2))
		if err != nil {
			b.Fatal(err)
		}
		app, err := pagerank.New(m, dg, pagerank.Config{Combine: coalesce})
		if err != nil {
			b.Fatal(err)
		}
		app.InitValues()
		stats, err := app.Run()
		if err != nil {
			b.Fatal(err)
		}
		return stats, app.Elapsed()
	}
	for i := 0; i < b.N; i++ {
		classic, classicCycles := run(false)
		packed, packedCycles := run(true)
		if packed.ShuffleMsgs >= classic.ShuffleMsgs {
			b.Fatalf("coalesced shuffle sent %d network messages, classic %d — packing regressed",
				packed.ShuffleMsgs, classic.ShuffleMsgs)
		}
		if packed.ShuffleTuples != classic.ShuffleTuples {
			b.Fatalf("coalesced logical tuples %d, classic %d — termination accounting broken",
				packed.ShuffleTuples, classic.ShuffleTuples)
		}
		b.ReportMetric(float64(classic.ShuffleMsgs), "classic-msgs")
		b.ReportMetric(float64(packed.ShuffleMsgs), "coalesced-msgs")
		b.ReportMetric(float64(packed.ShuffleTuples)/float64(packed.ShuffleMsgs), "tup/msg")
		b.ReportMetric(float64(classicCycles), "classic-cycles")
		b.ReportMetric(float64(packedCycles), "coalesced-cycles")
	}
}

// BenchmarkAblationTCBinding compares triangle counting under Block vs
// PBMW map bindings (the paper's two TC variants, Section 4.3.3).
func BenchmarkAblationTCBinding(b *testing.B) {
	g := benchGraph(10, true)
	split := graph.Split(g, 0)
	run := func(pbmw bool) updown.Cycles {
		m, err := updown.New(updown.Config{Nodes: 1})
		if err != nil {
			b.Fatal(err)
		}
		dg, err := graph.LoadToGAS(m.GAS, split, graph.DefaultPlacement(1))
		if err != nil {
			b.Fatal(err)
		}
		app, err := tc.New(m, dg, tc.Config{UsePBMW: pbmw})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			b.Fatal(err)
		}
		return app.Elapsed()
	}
	for i := 0; i < b.N; i++ {
		block := run(false)
		pbmw := run(true)
		b.ReportMetric(float64(block), "block-cycles")
		b.ReportMetric(float64(pbmw), "pbmw-cycles")
	}
}

// BenchmarkEngineShards measures the host-side benefit of the conservative
// window-parallel simulation (Fastsim's OpenMP parallelism analogue): the
// same workload under 1 vs auto shards, reporting simulator throughput.
func BenchmarkEngineShards(b *testing.B) {
	g := benchGraph(12, false)
	split := graph.Split(g, 512)
	bench := func(b *testing.B, shards int) {
		for i := 0; i < b.N; i++ {
			m, err := updown.New(updown.Config{Nodes: 8, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			dg, err := graph.LoadToGAS(m.GAS, split, graph.DefaultPlacement(8))
			if err != nil {
				b.Fatal(err)
			}
			app, err := pagerank.New(m, dg, pagerank.Config{})
			if err != nil {
				b.Fatal(err)
			}
			app.InitValues()
			start := time.Now()
			stats, err := app.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.Events)/time.Since(start).Seconds()/1e6, "host-Mev/s")
		}
	}
	b.Run("sequential", func(b *testing.B) { bench(b, 1) })
	b.Run("parallel", func(b *testing.B) { bench(b, 0) })
}

// BenchmarkHostBaselines measures the conventional multicore comparators
// on the host CPU — the stand-in for the paper's Perlmutter/EOS numbers.
func BenchmarkHostBaselines(b *testing.B) {
	g := benchGraph(16, true)
	b.Run("PageRank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.PageRankParallel(g, 1, 0)
		}
		b.ReportMetric(float64(g.NumEdges()), "edges")
	})
	b.Run("BFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.BFSParallel(g, 28, 0)
		}
	})
	b.Run("TC", func(b *testing.B) {
		small := benchGraph(13, true)
		for i := 0; i < b.N; i++ {
			baseline.TriangleCountParallel(small, 0)
		}
	})
}

// BenchmarkKVMSROverhead isolates the fixed cost of one KVMSR invocation
// (hierarchical broadcast + termination detection) by running an empty
// doAll over the whole machine at several node counts.
func BenchmarkKVMSROverhead(b *testing.B) {
	for _, nodes := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "1node", 4: "4nodes", 16: "16nodes"}[nodes], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := updown.New(updown.Config{Nodes: nodes})
				if err != nil {
					b.Fatal(err)
				}
				var inv *kvmsr.Invocation
				body := m.Prog.Define("noop", func(c *updown.Ctx) {
					inv.Return(c, c.Cont())
					c.YieldTerminate()
				})
				inv = kvmsr.MustNew(m.Prog, kvmsr.Spec{
					Name: "empty", MapEvent: body, Lanes: kvmsr.AllLanes(m.Arch),
				})
				m.Start(inv.LaunchEvw(), 0)
				stats, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.FinalTime), "overhead-cycles")
			}
		})
	}
}
